//! Request dispatch: authorization, role routing, and execution.

use std::sync::Arc;
use std::time::{Duration, Instant};

use rls_metrics::{unix_micros_now, HistogramSnapshot, Registry, TelemetryRing, TelemetrySample};
use rls_net::ConnMeter;
use rls_proto::{
    FrameMeta, LagStamp, Request, Response, RliHit, RliTargetWire, ServerStatsWire, SpanWire,
    StatsHistoryWire,
};
use rls_trace::{SpanRecord, TraceJournal, TraceQueryFilter};
use rls_types::{ErrorCode, Glob, Privilege, RlsError, RlsResult, Timestamp};

use crate::auth::{required_privilege, Authorizer, Identity};
use crate::lrc::LrcService;
use crate::rli::RliService;

/// Name-sorted (histograms, counters) lists gathered from every registry
/// on the server — the shared payload of the stats RPC and each
/// flight-recorder telemetry sample.
pub type MetricsCapture = (Vec<(String, HistogramSnapshot)>, Vec<(String, u64)>);

/// Shared server state handed to every connection handler.
pub struct ServerState {
    /// Advertised identity (LRC name in soft-state updates).
    pub name: String,
    /// Software version string reported in handshakes.
    pub version: String,
    /// LRC role, if configured.
    pub lrc: Option<Arc<LrcService>>,
    /// RLI role, if configured.
    pub rli: Option<Arc<RliService>>,
    /// ACL evaluator.
    pub authorizer: Authorizer,
    /// Server-level metrics: one `op.*` latency histogram per request
    /// variant, recorded by [`handle_request`].
    pub metrics: Arc<Registry>,
    /// Transport meter shared with every accepted connection (`net.*`
    /// counters in the stats report).
    pub net: Arc<ConnMeter>,
    /// Bounded span journal: every request records an `op.*` span here,
    /// with child spans (`lrc.commit`, `rli.apply_*`, ...) linked to it.
    /// Queryable via [`Request::TraceQuery`] / `rls-cli trace`.
    pub journal: Arc<TraceJournal>,
    /// Operations slower than this are logged through the structured
    /// logger at `warn`; `None` disables the slow-op log
    /// (`slow_op_threshold_ms` in the config file).
    pub slow_op_threshold: Option<Duration>,
    /// Flight-recorder ring of whole-registry snapshots, filled by the
    /// sampler thread (or [`capture_sample`](Self::capture_sample)
    /// directly) and served by the `StatsHistory` RPC.
    pub telemetry: Arc<TelemetryRing>,
    /// Sampler cadence, echoed to `StatsHistory` clients so they can
    /// compute rates without guessing the window (zero = sampler off).
    pub telemetry_interval: Duration,
    /// Server start instant; telemetry samples carry monotonic uptimes
    /// derived from this.
    pub started_at: Instant,
}

impl std::fmt::Debug for ServerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServerState")
            .field("name", &self.name)
            .field("is_lrc", &self.lrc.is_some())
            .field("is_rli", &self.rli.is_some())
            .finish_non_exhaustive()
    }
}

impl ServerState {
    fn lrc(&self) -> RlsResult<&Arc<LrcService>> {
        self.lrc.as_ref().ok_or_else(|| {
            RlsError::new(ErrorCode::WrongRole, "server is not configured as an LRC")
        })
    }

    fn rli(&self) -> RlsResult<&Arc<RliService>> {
        self.rli.as_ref().ok_or_else(|| {
            RlsError::new(ErrorCode::WrongRole, "server is not configured as an RLI")
        })
    }

    /// Every histogram and labeled counter from the server, LRC and RLI
    /// registries, plus engine counters from each role's database, the
    /// transport meter, and the trace journal — both lists sorted by name.
    /// Shared by [`stats`](Self::stats) and the telemetry sampler, so the
    /// flight-recorder samples carry exactly what the stats RPC reports.
    pub fn collect_metrics(&self) -> MetricsCapture {
        let mut hists = self.metrics.histogram_snapshot();
        let mut counters = self.metrics.counter_snapshot();
        counters.push(("trace.journal_spans".into(), self.journal.len() as u64));
        counters.push((
            "trace.journal_capacity".into(),
            self.journal.capacity() as u64,
        ));
        counters.push(("trace.spans_recorded".into(), self.journal.recorded_total()));
        counters.push(("net.bytes_in".into(), self.net.bytes_in()));
        counters.push(("net.bytes_out".into(), self.net.bytes_out()));
        counters.push(("net.frames_in".into(), self.net.frames_in()));
        counters.push(("net.frames_out".into(), self.net.frames_out()));
        counters.push(("net.tx_writev".into(), self.net.tx_writev()));
        counters.push(("net.tx_writev_resumes".into(), self.net.tx_writev_resumes()));
        counters.push(("net.tx_errors".into(), self.net.tx_errors()));
        if let Some(lrc) = &self.lrc {
            // `lrc.engine.*` aggregates every shard; the per-shard split is
            // in the `storage.shard.*` counters from the LRC registry.
            push_engine_counters(&mut counters, "lrc", lrc.catalog().engine_stats());
            hists.extend(lrc.metrics().histogram_snapshot());
            counters.extend(lrc.metrics().counter_snapshot());
            counters.push((
                "softstate.pending_deltas".into(),
                lrc.pending_deltas() as u64,
            ));
            counters.push((
                "softstate.bloom_regenerations".into(),
                lrc.bloom_regenerations(),
            ));
        }
        if let Some(rli) = &self.rli {
            push_engine_counters(&mut counters, "rli", rli.db().engine_stats());
            hists.extend(rli.metrics().histogram_snapshot());
            counters.extend(rli.metrics().counter_snapshot());
        }
        hists.sort_by(|a, b| a.0.cmp(&b.0));
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        (hists, counters)
    }

    /// Assembles the stats snapshot: the fixed compatibility counters plus
    /// everything [`collect_metrics`](Self::collect_metrics) gathers.
    pub fn stats(&self) -> ServerStatsWire {
        let mut s = ServerStatsWire {
            is_lrc: self.lrc.is_some(),
            is_rli: self.rli.is_some(),
            ..Default::default()
        };
        if let Some(lrc) = &self.lrc {
            let catalog = lrc.catalog();
            s.lrc_lfn_count = catalog.lfn_count();
            s.lrc_mapping_count = catalog.mapping_count();
            let st = catalog.stats();
            s.adds = st.adds;
            s.deletes = st.deletes;
            s.queries += st.queries + st.wildcard_queries;
        }
        if let Some(rli) = &self.rli {
            s.rli_association_count = rli.association_count();
            s.rli_bloom_filters = rli.bloom_count();
            s.queries += rli.queries_served();
            s.updates_received = rli.updates_received();
            s.expired = rli.expired_total();
        }
        let (hists, counters) = self.collect_metrics();
        s.op_latencies = hists;
        s.counters = counters;
        s
    }

    /// Refreshes every derived gauge that earlier releases computed lazily
    /// inside the stats RPC: the per-shard mapping counts and
    /// `storage.shard.imbalance_ppm` on the LRC, and the per-LRC staleness
    /// plane (`rli.lrc.staleness_ms.*`, `rli.mapping_divergence.*`) on the
    /// RLI. Runs on the sampler cadence, so the gauges stay live even when
    /// nobody polls `Stats`.
    pub fn refresh_gauges(&self) {
        if let Some(lrc) = &self.lrc {
            lrc.record_shard_gauges();
        }
        if let Some(rli) = &self.rli {
            rli.refresh_staleness_gauges();
        }
    }

    /// Rolls the per-operation worst-latency exemplars into
    /// `exemplar.<op>.max_us` / `exemplar.<op>.trace_id` gauge pairs. A
    /// window with no samples keeps the previous pair, so the last
    /// non-empty window stays diagnosable from `rls-cli stats`.
    pub fn roll_exemplars(&self) {
        for (name, ex) in self.metrics.exemplar_handles() {
            if let Some((micros, trace_id)) = ex.take() {
                self.metrics
                    .counter(&format!("exemplar.{name}.max_us"))
                    .set(micros);
                self.metrics
                    .counter(&format!("exemplar.{name}.trace_id"))
                    .set(trace_id);
            }
        }
    }

    /// One flight-recorder tick: refresh the derived gauges, roll the
    /// latency exemplars, then capture the whole registry into the
    /// telemetry ring. Returns the captured sample's sequence number.
    pub fn capture_sample(&self) -> u64 {
        self.refresh_gauges();
        self.roll_exemplars();
        self.metrics.counter("telemetry.samples").inc();
        let (histograms, counters) = self.collect_metrics();
        self.telemetry.push(TelemetrySample {
            seq: 0, // the ring owns sequence assignment
            at_unix_micros: unix_micros_now(),
            uptime_micros: self.started_at.elapsed().as_micros().min(u64::MAX as u128) as u64,
            counters,
            histograms,
        })
    }
}

fn push_engine_counters(
    out: &mut Vec<(String, u64)>,
    role: &str,
    st: rls_storage::stats::EngineStats,
) {
    for (name, v) in [
        ("inserts", st.inserts),
        ("deletes", st.deletes),
        ("updates", st.updates),
        ("commits", st.commits),
        ("group_commits", st.group_commits),
        ("commit_micros", st.commit_micros),
        ("vacuums", st.vacuums),
        ("vacuum_micros", st.vacuum_micros),
        ("tuples_reclaimed", st.tuples_reclaimed),
    ] {
        out.push((format!("{role}.engine.{name}"), v));
    }
}

/// Runs one untraced request to completion (wraps
/// [`handle_request_framed`] with empty frame metadata).
pub fn handle_request(state: &ServerState, identity: &Identity, req: Request) -> Response {
    handle_request_framed(state, identity, req, &FrameMeta::default())
}

/// Runs one request to completion with propagated trace IDs but no lag
/// stamp (wraps [`handle_request_framed`]).
pub fn handle_request_traced(
    state: &ServerState,
    identity: &Identity,
    req: Request,
    trace_ids: &[u64],
) -> Response {
    let meta = FrameMeta {
        trace_ids: trace_ids.to_vec(),
        lag: None,
        request_id: None,
    };
    handle_request_framed(state, identity, req, &meta)
}

/// Runs one request to completion, producing the response frame.
///
/// Service time (authorization + execution, excluding transport) is
/// recorded under the request's [`Request::op_name`] histogram and as an
/// `op.*` span in the journal — under the first propagated trace ID, or a
/// locally minted one when the frame arrived untraced — and offered to the
/// operation's worst-latency [exemplar](rls_metrics::Exemplar). A
/// [`LagStamp`] in the frame metadata is recorded into the RLI staleness
/// plane by the soft-state arms. Requests over the configured slow-op
/// threshold are additionally logged at `warn` through the structured
/// logger, trace ID included.
pub fn handle_request_framed(
    state: &ServerState,
    identity: &Identity,
    req: Request,
    meta: &FrameMeta,
) -> Response {
    let op = req.op_name();
    let trace_id = meta
        .trace_ids
        .first()
        .copied()
        .unwrap_or_else(|| state.journal.mint_trace_id());
    let span = state.journal.begin(trace_id, 0, op);
    let ctx = TraceCtx {
        ids: &meta.trace_ids,
        trace_id: span.trace_id(),
        parent: span.span_id(),
        lag: meta.lag,
    };
    let t0 = Instant::now();
    let resp = {
        let denied = privilege_denied(state, identity, &req);
        match denied {
            Some(e) => Response::Error(e),
            None => match execute(state, req, &ctx) {
                Ok(resp) => resp,
                Err(e) => Response::Error(e),
            },
        }
    };
    let elapsed = t0.elapsed();
    state.metrics.histogram(op).record(elapsed);
    state
        .metrics
        .exemplar(op)
        .offer(elapsed.as_micros().min(u64::MAX as u128) as u64, ctx.trace_id);
    let outcome = match &resp {
        Response::Error(e) => format!("error: {:?}", e.code()),
        _ => "ok".to_owned(),
    };
    span.finish(!matches!(resp, Response::Error(_)), String::new());
    if let Some(threshold) = state.slow_op_threshold {
        if elapsed >= threshold {
            rls_trace::warn!(
                "dispatch",
                "slow op",
                server = state.name,
                op = op,
                trace = ctx.trace_id,
                elapsed_micros = elapsed.as_micros(),
                threshold_micros = threshold.as_micros(),
                outcome = outcome,
            );
        }
    }
    resp
}

/// Trace context threaded through [`execute`]: the full propagated ID list
/// (batched soft-state frames may carry several), the primary trace ID
/// (first propagated or locally minted, never 0), the enclosing `op.*`
/// span to parent child spans under, and the sender's soft-state lag
/// stamp, if the frame carried one.
struct TraceCtx<'a> {
    ids: &'a [u64],
    trace_id: u64,
    parent: u64,
    lag: Option<LagStamp>,
}

impl TraceCtx<'_> {
    /// IDs to attribute a soft-state apply to: every propagated ID, or the
    /// local one when the frame arrived untraced.
    fn apply_ids(&self) -> Vec<u64> {
        if self.ids.is_empty() {
            vec![self.trace_id]
        } else {
            self.ids.to_vec()
        }
    }
}

/// Evaluates the request's required privilege, returning the denial error
/// if any. [`Request::TraceQuery`] is special-cased: the journal is
/// readable with `lrc_read` *or* `rli_read` (a pure-RLI operator should be
/// able to inspect apply/expire spans without LRC privileges).
fn privilege_denied(state: &ServerState, identity: &Identity, req: &Request) -> Option<RlsError> {
    let privilege = required_privilege(req)?;
    let denied = state.authorizer.check(identity, privilege).err()?;
    if matches!(req, Request::TraceQuery { .. })
        && state.authorizer.check(identity, Privilege::RliRead).is_ok()
    {
        return None;
    }
    Some(denied)
}

fn span_to_wire(s: SpanRecord) -> SpanWire {
    SpanWire {
        trace_id: s.trace_id,
        span_id: s.span_id,
        parent_span: s.parent_span,
        op: s.op,
        start_micros: s.start_micros,
        duration_micros: s.duration_micros,
        ok: s.ok,
        detail: s.detail,
    }
}

/// Collapses per-item bulk results into the wire form: only the failures,
/// each tagged with its slot index.
fn bulk_status<T>(results: Vec<Result<T, RlsError>>) -> Response {
    Response::BulkStatus(
        results
            .into_iter()
            .enumerate()
            .filter_map(|(i, r)| r.err().map(|e| (i as u32, e)))
            .collect(),
    )
}

/// Runs one bulk mapping batch through the LRC's group-commit path,
/// recording the batch as a single `lrc.bulk_commit` span.
fn bulk_mappings(
    state: &ServerState,
    op: rls_storage::BulkMappingOp,
    items: &[rls_types::Mapping],
    ctx: &TraceCtx<'_>,
) -> RlsResult<Response> {
    let lrc = state.lrc()?;
    let span = state
        .journal
        .begin(ctx.trace_id, ctx.parent, "lrc.bulk_commit");
    let results = lrc.bulk_mappings_traced(op, items, ctx.trace_id);
    span.finish(results.is_ok(), format!("items={}", items.len()));
    Ok(bulk_status(results?))
}

fn execute(state: &ServerState, req: Request, ctx: &TraceCtx<'_>) -> RlsResult<Response> {
    use Request::*;
    Ok(match req {
        Hello { .. } => Response::Error(RlsError::bad_request(
            "Hello is only valid as the first frame",
        )),
        Ping => Response::Pong,

        // -- LRC mapping management --
        Create(m) => {
            let span = state.journal.begin(ctx.trace_id, ctx.parent, "lrc.commit");
            let r = state.lrc()?.create_mapping_traced(&m, ctx.trace_id);
            span.finish(r.is_ok(), m.logical.as_str());
            r?;
            Response::Ok
        }
        Add(m) => {
            let span = state.journal.begin(ctx.trace_id, ctx.parent, "lrc.commit");
            let r = state.lrc()?.add_mapping_traced(&m, ctx.trace_id);
            span.finish(r.is_ok(), m.logical.as_str());
            r?;
            Response::Ok
        }
        Delete(m) => {
            let span = state.journal.begin(ctx.trace_id, ctx.parent, "lrc.commit");
            let r = state.lrc()?.delete_mapping_traced(&m, ctx.trace_id);
            span.finish(r.is_ok(), m.logical.as_str());
            r?;
            Response::Ok
        }
        BulkCreate(ms) => bulk_mappings(state, rls_storage::BulkMappingOp::Create, &ms, ctx)?,
        BulkAdd(ms) => bulk_mappings(state, rls_storage::BulkMappingOp::Add, &ms, ctx)?,
        BulkDelete(ms) => bulk_mappings(state, rls_storage::BulkMappingOp::Delete, &ms, ctx)?,

        // -- LRC queries --
        QueryLfn(lfn) => {
            let lrc = state.lrc()?;
            lrc.count_query();
            let t0 = Instant::now();
            let targets = lrc.catalog().query_lfn(&lfn)?;
            lrc.metrics()
                .histogram("storage.query_lfn")
                .record(t0.elapsed());
            Response::Targets(targets.iter().map(|t| t.to_string()).collect())
        }
        QueryPfn(pfn) => {
            let lrc = state.lrc()?;
            lrc.count_query();
            let t0 = Instant::now();
            let logicals = lrc.catalog().query_pfn(&pfn)?;
            lrc.metrics()
                .histogram("storage.query_pfn")
                .record(t0.elapsed());
            Response::Logicals(logicals.iter().map(|l| l.to_string()).collect())
        }
        BulkQueryLfn(names) => {
            let lrc = state.lrc()?;
            lrc.count_query();
            // Each name takes its owner shard's read lock; the batch never
            // pins the whole catalog.
            let results = names
                .into_iter()
                .map(|name| {
                    let res = lrc
                        .catalog()
                        .query_lfn(&name)
                        .map(|ts| ts.iter().map(|t| t.to_string()).collect());
                    (name, res)
                })
                .collect();
            Response::BulkLfnResults(results)
        }
        WildcardQueryLfn { pattern, limit } => {
            let lrc = state.lrc()?;
            lrc.count_query();
            let glob = Glob::new(pattern)?;
            let hits = lrc.catalog().wildcard_query_lfn(&glob, limit as usize)?;
            Response::Mappings(hits)
        }
        WildcardQueryPfn { pattern, limit } => {
            let lrc = state.lrc()?;
            lrc.count_query();
            let glob = Glob::new(pattern)?;
            let hits = lrc.catalog().wildcard_query_pfn(&glob, limit as usize)?;
            Response::Mappings(hits)
        }

        // -- LRC attributes --
        DefineAttr(def) => {
            state.lrc()?.catalog().define_attribute(&def)?;
            Response::Ok
        }
        UndefineAttr {
            name,
            objtype,
            clear_values,
        } => {
            state
                .lrc()?
                .catalog()
                .undefine_attribute(&name, objtype, clear_values)?;
            Response::Ok
        }
        AddAttr(a) => {
            state
                .lrc()?
                .catalog()
                .add_attribute(&a.obj, a.objtype, &a.name, &a.value)?;
            Response::Ok
        }
        ModifyAttr(a) => {
            state
                .lrc()?
                .catalog()
                .modify_attribute(&a.obj, a.objtype, &a.name, &a.value)?;
            Response::Ok
        }
        RemoveAttr { obj, objtype, name } => {
            state
                .lrc()?
                .catalog()
                .remove_attribute(&obj, objtype, &name)?;
            Response::Ok
        }
        GetAttrs { obj, objtype, name } => {
            let lrc = state.lrc()?;
            let attrs = lrc
                .catalog()
                .get_attributes(&obj, objtype, name.as_deref())?;
            Response::Attrs(attrs)
        }
        SearchAttr {
            name,
            objtype,
            op,
            operand,
        } => {
            let lrc = state.lrc()?;
            let hits = lrc
                .catalog()
                .search_attribute(&name, objtype, op, operand.as_ref())?;
            Response::Attrs(hits)
        }
        BulkAddAttr(items) => {
            let ops: Vec<rls_storage::BulkAttrOp<'_>> = items
                .iter()
                .map(|a| rls_storage::BulkAttrOp::Add {
                    obj: &a.obj,
                    objtype: a.objtype,
                    name: &a.name,
                    value: &a.value,
                })
                .collect();
            bulk_status(state.lrc()?.bulk_attributes(&ops)?)
        }
        BulkModifyAttr(items) => {
            let ops: Vec<rls_storage::BulkAttrOp<'_>> = items
                .iter()
                .map(|a| rls_storage::BulkAttrOp::Modify {
                    obj: &a.obj,
                    objtype: a.objtype,
                    name: &a.name,
                    value: &a.value,
                })
                .collect();
            bulk_status(state.lrc()?.bulk_attributes(&ops)?)
        }
        BulkRemoveAttr(items) => {
            let ops: Vec<rls_storage::BulkAttrOp<'_>> = items
                .iter()
                .map(|(obj, objtype, name)| rls_storage::BulkAttrOp::Remove {
                    obj,
                    objtype: *objtype,
                    name,
                })
                .collect();
            bulk_status(state.lrc()?.bulk_attributes(&ops)?)
        }

        // -- LRC management --
        AddRli {
            name,
            flags,
            patterns,
        } => {
            state.lrc()?.catalog().add_rli(&name, flags, &patterns)?;
            Response::Ok
        }
        RemoveRli { name } => {
            state.lrc()?.catalog().remove_rli(&name)?;
            Response::Ok
        }
        ListRlis => {
            let rlis = state
                .lrc()?
                .catalog()
                .list_rlis()
                .into_iter()
                .map(|t| RliTargetWire {
                    name: t.name,
                    flags: t.flags,
                    patterns: t.patterns,
                })
                .collect();
            Response::Rlis(rlis)
        }

        // -- RLI operations --
        RliQueryLfn(lfn) => {
            let hits = state.rli()?.query(&lfn)?;
            Response::RliHits(
                hits.into_iter()
                    .map(|h| RliHit {
                        lrc: h.lrc.to_string(),
                        updated_micros: h.updated_at.as_micros(),
                    })
                    .collect(),
            )
        }
        RliBulkQueryLfn(names) => {
            let rli = state.rli()?;
            let results = names
                .into_iter()
                .map(|name| {
                    let res = rli.query(&name).map(|hits| {
                        hits.into_iter()
                            .map(|h| RliHit {
                                lrc: h.lrc.to_string(),
                                updated_micros: h.updated_at.as_micros(),
                            })
                            .collect()
                    });
                    (name, res)
                })
                .collect();
            Response::RliBulkResults(results)
        }
        RliWildcardQuery { pattern, limit } => {
            let glob = Glob::new(pattern)?;
            let pairs = state.rli()?.wildcard_query(&glob, limit as usize)?;
            Response::RliPairs(
                pairs
                    .into_iter()
                    .map(|(lfn, lrc)| (lfn.to_string(), lrc.to_string()))
                    .collect(),
            )
        }
        RliListLrcs => Response::Names(state.rli()?.lrc_list()),

        // -- soft-state updates --
        SoftStateFull {
            lrc,
            update_id,
            seq,
            last,
            lfns,
        } => {
            let t0 = Instant::now();
            let n = state
                .rli()?
                .apply_full_chunk_seq(&lrc, update_id, seq, last, &lfns, Timestamp::now())?;
            if let Some(stamp) = ctx.lag {
                state.rli()?.note_update_stamp(&lrc, stamp);
            }
            let detail = format!("lrc={lrc} update_id={update_id} seq={seq} upserts={n}");
            for id in ctx.apply_ids() {
                state.journal.record_with(
                    id,
                    ctx.parent,
                    "rli.apply_full",
                    t0,
                    t0.elapsed(),
                    true,
                    detail.clone(),
                );
            }
            Response::Ok
        }
        SoftStateDelta {
            lrc,
            added,
            removed,
        } => {
            let t0 = Instant::now();
            state
                .rli()?
                .apply_delta(&lrc, &added, &removed, Timestamp::now())?;
            if let Some(stamp) = ctx.lag {
                state.rli()?.note_update_stamp(&lrc, stamp);
            }
            let detail = format!("lrc={lrc} added={} removed={}", added.len(), removed.len());
            for id in ctx.apply_ids() {
                state.journal.record_with(
                    id,
                    ctx.parent,
                    "rli.apply_delta",
                    t0,
                    t0.elapsed(),
                    true,
                    detail.clone(),
                );
            }
            Response::Ok
        }
        SoftStateBloom {
            lrc,
            params,
            bits,
            words,
            entries,
        } => {
            let filter = Request::bloom_from_wire(params, bits, &words, entries)?;
            let t0 = Instant::now();
            state.rli()?.apply_bloom(&lrc, filter, Timestamp::now());
            if let Some(stamp) = ctx.lag {
                state.rli()?.note_update_stamp(&lrc, stamp);
            }
            for id in ctx.apply_ids() {
                state.journal.record_with(
                    id,
                    ctx.parent,
                    "rli.apply_bloom",
                    t0,
                    t0.elapsed(),
                    true,
                    format!("lrc={lrc} entries={entries}"),
                );
            }
            Response::Ok
        }

        // -- admin --
        Stats => Response::StatsReport(state.stats()),
        StatsHistory { since_seq, limit } => {
            Response::StatsHistoryReport(StatsHistoryWire {
                interval_micros: state
                    .telemetry_interval
                    .as_micros()
                    .min(u64::MAX as u128) as u64,
                ring_capacity: state.telemetry.capacity() as u64,
                samples_total: state.telemetry.total_samples(),
                samples: state.telemetry.since(since_seq, limit as usize),
            })
        }
        TraceQuery {
            trace_id,
            op_prefix,
            min_duration_micros,
            limit,
        } => {
            let spans = state
                .journal
                .query(&TraceQueryFilter {
                    trace_id,
                    op_prefix,
                    min_duration_micros,
                    limit: limit as usize,
                })
                .into_iter()
                .map(span_to_wire)
                .collect();
            Response::Spans(spans)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AuthConfig, LrcConfig, RliConfig};
    use rls_types::Mapping;

    fn state() -> ServerState {
        ServerState {
            name: "test-server".into(),
            version: "2.0.9".into(),
            lrc: Some(Arc::new(LrcService::new(LrcConfig::default()).unwrap())),
            rli: Some(Arc::new(RliService::new(RliConfig::default()).unwrap())),
            authorizer: Authorizer::new(AuthConfig::default()),
            metrics: Arc::new(Registry::new()),
            net: Arc::new(ConnMeter::new()),
            journal: Arc::new(TraceJournal::new(1024)),
            slow_op_threshold: None,
            telemetry: Arc::new(TelemetryRing::new(64)),
            telemetry_interval: Duration::from_secs(1),
            started_at: Instant::now(),
        }
    }

    fn anon() -> Identity {
        Identity::anonymous()
    }

    fn m(l: &str, t: &str) -> Mapping {
        Mapping::new(l, t).unwrap()
    }

    #[test]
    fn mapping_round_trip_through_dispatch() {
        let st = state();
        let id = anon();
        assert_eq!(
            handle_request(&st, &id, Request::Create(m("lfn://a", "pfn://1"))),
            Response::Ok
        );
        assert_eq!(
            handle_request(&st, &id, Request::Add(m("lfn://a", "pfn://2"))),
            Response::Ok
        );
        let Response::Targets(mut ts) =
            handle_request(&st, &id, Request::QueryLfn("lfn://a".into()))
        else {
            panic!("expected targets");
        };
        ts.sort();
        assert_eq!(ts, vec!["pfn://1", "pfn://2"]);
        assert_eq!(
            handle_request(&st, &id, Request::Delete(m("lfn://a", "pfn://1"))),
            Response::Ok
        );
    }

    #[test]
    fn bulk_reports_per_item_failures() {
        let st = state();
        let id = anon();
        let resp = handle_request(
            &st,
            &id,
            Request::BulkCreate(vec![
                m("lfn://a", "pfn://1"),
                m("lfn://a", "pfn://dup"), // create of existing lfn fails
                m("lfn://b", "pfn://2"),
            ]),
        );
        let Response::BulkStatus(failures) = resp else {
            panic!("expected bulk status");
        };
        assert_eq!(failures.len(), 1);
        assert_eq!(failures[0].0, 1);
        assert_eq!(failures[0].1.code(), ErrorCode::MappingExists);
    }

    #[test]
    fn bulk_query_mixes_hits_and_misses() {
        let st = state();
        let id = anon();
        handle_request(&st, &id, Request::Create(m("lfn://a", "pfn://1")));
        let Response::BulkLfnResults(results) = handle_request(
            &st,
            &id,
            Request::BulkQueryLfn(vec!["lfn://a".into(), "lfn://missing".into()]),
        ) else {
            panic!("expected bulk results");
        };
        assert!(results[0].1.is_ok());
        assert_eq!(
            results[1].1.as_ref().unwrap_err().code(),
            ErrorCode::LogicalNameNotFound
        );
    }

    #[test]
    fn wrong_role_rejected() {
        let st = ServerState {
            rli: None,
            ..state()
        };
        let resp = handle_request(&st, &anon(), Request::RliQueryLfn("lfn://a".into()));
        let Response::Error(e) = resp else {
            panic!("expected error")
        };
        assert_eq!(e.code(), ErrorCode::WrongRole);
    }

    #[test]
    fn soft_state_full_then_rli_query() {
        let st = state();
        let id = anon();
        let resp = handle_request(
            &st,
            &id,
            Request::SoftStateFull {
                lrc: "lrc-9".into(),
                update_id: 1,
                seq: 0,
                last: true,
                lfns: vec!["lfn://x".into()],
            },
        );
        assert_eq!(resp, Response::Ok);
        let Response::RliHits(hits) = handle_request(&st, &id, Request::RliQueryLfn("lfn://x".into()))
        else {
            panic!("expected hits");
        };
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].lrc, "lrc-9");
    }

    #[test]
    fn stats_reflect_activity() {
        let st = state();
        let id = anon();
        handle_request(&st, &id, Request::Create(m("lfn://a", "pfn://1")));
        handle_request(&st, &id, Request::QueryLfn("lfn://a".into()));
        let Response::StatsReport(s) = handle_request(&st, &id, Request::Stats) else {
            panic!("expected stats");
        };
        assert!(s.is_lrc && s.is_rli);
        assert_eq!(s.lrc_lfn_count, 1);
        assert_eq!(s.lrc_mapping_count, 1);
        assert_eq!(s.adds, 1);
        assert_eq!(s.queries, 1);
    }

    #[test]
    fn stats_carry_op_histograms_and_counters() {
        let st = state();
        let id = anon();
        handle_request(&st, &id, Request::Create(m("lfn://a", "pfn://1")));
        handle_request(&st, &id, Request::QueryLfn("lfn://a".into()));
        handle_request(&st, &id, Request::QueryLfn("lfn://a".into()));
        let Response::StatsReport(s) = handle_request(&st, &id, Request::Stats) else {
            panic!("expected stats");
        };
        let hist = |name: &str| {
            s.op_latencies
                .iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("missing histogram {name}"))
                .1
        };
        assert_eq!(hist("op.create").count, 1);
        assert_eq!(hist("op.query_lfn").count, 2);
        assert_eq!(hist("storage.query_lfn").count, 2);
        let counter = |name: &str| {
            s.counters
                .iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("missing counter {name}"))
                .1
        };
        assert!(counter("lrc.engine.inserts") >= 1);
        // Default update mode journals nothing, but the gauge is reported.
        assert_eq!(counter("softstate.pending_deltas"), 0);
        // Names arrive sorted so the CLI report is stable.
        let names: Vec<&str> = s.op_latencies.iter().map(|(n, _)| n.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
    }

    #[test]
    fn op_histograms_record_errors_too() {
        let st = ServerState {
            rli: None,
            ..state()
        };
        let resp = handle_request(&st, &anon(), Request::RliQueryLfn("lfn://a".into()));
        assert!(matches!(resp, Response::Error(_)));
        let s = st.stats();
        let (_, h) = s
            .op_latencies
            .iter()
            .find(|(n, _)| n == "op.rli_query_lfn")
            .expect("failed ops still timed");
        assert_eq!(h.count, 1);
    }

    #[test]
    fn denied_without_privilege() {
        use rls_types::{AclEntry, AclSubject, Privilege};
        let mut auth = AuthConfig {
            enabled: true,
            ..Default::default()
        };
        auth.acl
            .push(AclEntry::new(AclSubject::Dn, "/trusted/.*", vec![Privilege::LrcRead]).unwrap());
        let st = ServerState {
            authorizer: Authorizer::new(auth),
            ..state()
        };
        let stranger = Identity {
            dn: rls_types::Dn::new("/stranger"),
            local_user: None,
        };
        let resp = handle_request(&st, &stranger, Request::Create(m("lfn://a", "pfn://1")));
        let Response::Error(e) = resp else {
            panic!("expected denial")
        };
        assert_eq!(e.code(), ErrorCode::PermissionDenied);
        // Ping needs no privilege.
        assert_eq!(handle_request(&st, &stranger, Request::Ping), Response::Pong);
    }

    #[test]
    fn traced_request_records_op_and_commit_spans() {
        let st = state();
        let id = anon();
        let resp =
            handle_request_traced(&st, &id, Request::Create(m("lfn://t", "pfn://1")), &[4242]);
        assert_eq!(resp, Response::Ok);
        let spans = st.journal.query(&TraceQueryFilter {
            trace_id: 4242,
            ..Default::default()
        });
        assert_eq!(spans.len(), 2, "op span + lrc.commit child: {spans:?}");
        let op = spans.iter().find(|s| s.op == "op.create").unwrap();
        let commit = spans.iter().find(|s| s.op == "lrc.commit").unwrap();
        assert!(op.ok && commit.ok);
        assert_eq!(commit.parent_span, op.span_id);
    }

    #[test]
    fn untraced_request_mints_a_local_trace_id() {
        let st = state();
        handle_request(&st, &anon(), Request::QueryLfn("lfn://missing".into()));
        let spans = st.journal.query(&TraceQueryFilter::default());
        assert_eq!(spans.len(), 1);
        assert_ne!(spans[0].trace_id, 0);
        assert!(!spans[0].ok, "failed query records a failed span");
    }

    #[test]
    fn trace_query_over_dispatch_filters_by_trace() {
        let st = state();
        let id = anon();
        handle_request_traced(&st, &id, Request::Create(m("lfn://q", "pfn://1")), &[5]);
        handle_request(&st, &id, Request::Ping);
        let Response::Spans(spans) = handle_request(
            &st,
            &id,
            Request::TraceQuery {
                trace_id: 5,
                op_prefix: String::new(),
                min_duration_micros: 0,
                limit: 0,
            },
        ) else {
            panic!("expected spans");
        };
        assert_eq!(spans.len(), 2);
        assert!(spans.iter().all(|s| s.trace_id == 5));
    }

    #[test]
    fn soft_state_delta_applies_under_every_propagated_trace() {
        let st = state();
        let resp = handle_request_traced(
            &st,
            &anon(),
            Request::SoftStateDelta {
                lrc: "lrc-x".into(),
                added: vec!["lfn://d".into()],
                removed: vec![],
            },
            &[21, 22],
        );
        assert_eq!(resp, Response::Ok);
        for id in [21u64, 22] {
            let spans = st.journal.query(&TraceQueryFilter {
                trace_id: id,
                op_prefix: "rli.apply_delta".into(),
                ..Default::default()
            });
            assert_eq!(spans.len(), 1, "trace {id}");
        }
    }

    #[test]
    fn trace_query_allowed_with_rli_read_alone() {
        use rls_types::{AclEntry, AclSubject, Privilege};
        let mut auth = AuthConfig {
            enabled: true,
            ..Default::default()
        };
        auth.acl.push(
            AclEntry::new(AclSubject::Dn, "/rli-op/.*", vec![Privilege::RliRead]).unwrap(),
        );
        let st = ServerState {
            authorizer: Authorizer::new(auth),
            ..state()
        };
        let operator = Identity {
            dn: rls_types::Dn::new("/rli-op/CN=x"),
            local_user: None,
        };
        let q = Request::TraceQuery {
            trace_id: 0,
            op_prefix: String::new(),
            min_duration_micros: 0,
            limit: 0,
        };
        assert!(matches!(
            handle_request(&st, &operator, q.clone()),
            Response::Spans(_)
        ));
        let stranger = Identity {
            dn: rls_types::Dn::new("/stranger"),
            local_user: None,
        };
        assert!(matches!(
            handle_request(&st, &stranger, q),
            Response::Error(_)
        ));
    }

    #[test]
    fn stats_history_over_dispatch_with_cursor() {
        let st = state();
        let id = anon();
        handle_request(&st, &id, Request::Create(m("lfn://h", "pfn://1")));
        let first = st.capture_sample();
        handle_request(&st, &id, Request::QueryLfn("lfn://h".into()));
        st.capture_sample();
        let Response::StatsHistoryReport(h) = handle_request(
            &st,
            &id,
            Request::StatsHistory {
                since_seq: 0,
                limit: 0,
            },
        ) else {
            panic!("expected history");
        };
        assert_eq!(h.interval_micros, 1_000_000);
        assert_eq!(h.ring_capacity, 64);
        assert_eq!(h.samples_total, 2);
        assert_eq!(h.samples.len(), 2);
        assert!(h.samples[0].seq < h.samples[1].seq);
        // A cursor skips already-seen samples.
        let Response::StatsHistoryReport(h) = handle_request(
            &st,
            &id,
            Request::StatsHistory {
                since_seq: first,
                limit: 0,
            },
        ) else {
            panic!("expected history");
        };
        assert_eq!(h.samples.len(), 1);
        // Samples carry the merged registry, including the sampler's own
        // tick counter.
        let counter = |s: &rls_metrics::TelemetrySample, name: &str| {
            s.counters
                .iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("missing counter {name}"))
                .1
        };
        assert_eq!(counter(&h.samples[0], "telemetry.samples"), 2);
        assert!(h.samples[0]
            .histograms
            .iter()
            .any(|(n, hs)| n == "op.create" && hs.count == 1));
    }

    #[test]
    fn sampler_refreshes_gauges_and_rolls_exemplars() {
        let st = state();
        let id = anon();
        handle_request(&st, &id, Request::Create(m("lfn://e", "pfn://1")));
        // The stats RPC no longer computes shard gauges lazily; they appear
        // once the sampler has run.
        let Response::StatsReport(s) = handle_request(&st, &id, Request::Stats) else {
            panic!("expected stats");
        };
        assert!(
            !s.counters
                .iter()
                .any(|(n, _)| n == "storage.shard.imbalance_ppm"),
            "shard gauges refresh on the sampler cadence, not in Stats"
        );
        st.capture_sample();
        let latest = st.telemetry.latest().expect("sample captured");
        let counter = |name: &str| {
            latest
                .counters
                .iter()
                .find(|(n, _)| n == name)
                .unwrap_or_else(|| panic!("missing counter {name}"))
                .1
        };
        assert_eq!(counter("storage.shard.imbalance_ppm"), 0); // one shard
        assert!(counter("exemplar.op.create.max_us") > 0);
        let exemplar_trace = counter("exemplar.op.create.trace_id");
        assert_ne!(exemplar_trace, 0);
        // The exemplar links back to a real journal span.
        let spans = st.journal.query(&TraceQueryFilter {
            trace_id: exemplar_trace,
            ..Default::default()
        });
        assert!(!spans.is_empty(), "exemplar trace id resolves in journal");
        // An idle window keeps the previous exemplar pair.
        st.capture_sample();
        let latest = st.telemetry.latest().unwrap();
        assert!(latest
            .counters
            .iter()
            .any(|(n, v)| n == "exemplar.op.create.trace_id" && *v == exemplar_trace));
    }

    #[test]
    fn lag_stamp_feeds_the_staleness_plane() {
        let st = state();
        let meta = FrameMeta {
            trace_ids: vec![77],
            lag: Some(LagStamp {
                commit_seq: 9,
                commit_unix_micros: unix_micros_now().saturating_sub(250_000),
            }),
            request_id: None,
        };
        let resp = handle_request_framed(
            &st,
            &anon(),
            Request::SoftStateDelta {
                lrc: "lrc-lag".into(),
                added: vec!["lfn://lag".into()],
                removed: vec![],
            },
            &meta,
        );
        assert_eq!(resp, Response::Ok);
        let rli = st.rli.as_ref().unwrap();
        let counters = rli.metrics().counter_snapshot();
        let lag_ms = counters
            .iter()
            .find(|(n, _)| n == "rli.update_lag_ms.lrc-lag")
            .expect("per-LRC lag gauge")
            .1;
        assert!((250..10_000).contains(&lag_ms), "lag_ms={lag_ms}");
        assert!(counters
            .iter()
            .any(|(n, v)| n == "rli.commit_seq.lrc-lag" && *v == 9));
        let hists = rli.metrics().histogram_snapshot();
        assert!(hists
            .iter()
            .any(|(n, h)| n == "rli.update_lag" && h.count == 1));
    }

    #[test]
    fn hello_mid_connection_rejected() {
        let st = state();
        let resp = handle_request(
            &st,
            &anon(),
            Request::Hello {
                dn: rls_types::Dn::anonymous(),
                version: rls_proto::PROTOCOL_VERSION,
            },
        );
        assert!(matches!(resp, Response::Error(_)));
    }

    #[test]
    fn invalid_glob_is_an_error_response() {
        let st = state();
        let resp = handle_request(
            &st,
            &anon(),
            Request::WildcardQueryLfn {
                pattern: "bad[".into(),
                limit: 10,
            },
        );
        let Response::Error(e) = resp else {
            panic!("expected error")
        };
        assert_eq!(e.code(), ErrorCode::InvalidPattern);
    }
}
