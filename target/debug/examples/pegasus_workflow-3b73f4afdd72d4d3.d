/root/repo/target/debug/examples/pegasus_workflow-3b73f4afdd72d4d3.d: examples/pegasus_workflow.rs Cargo.toml

/root/repo/target/debug/examples/libpegasus_workflow-3b73f4afdd72d4d3.rmeta: examples/pegasus_workflow.rs Cargo.toml

examples/pegasus_workflow.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
