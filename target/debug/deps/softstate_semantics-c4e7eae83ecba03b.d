/root/repo/target/debug/deps/softstate_semantics-c4e7eae83ecba03b.d: crates/core/tests/softstate_semantics.rs Cargo.toml

/root/repo/target/debug/deps/libsoftstate_semantics-c4e7eae83ecba03b.rmeta: crates/core/tests/softstate_semantics.rs Cargo.toml

crates/core/tests/softstate_semantics.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
