/root/repo/target/release/deps/rls_types-06fc8bc62433faea.d: crates/types/src/lib.rs crates/types/src/attribute.rs crates/types/src/auth.rs crates/types/src/error.rs crates/types/src/names.rs crates/types/src/pattern.rs crates/types/src/time.rs

/root/repo/target/release/deps/librls_types-06fc8bc62433faea.rlib: crates/types/src/lib.rs crates/types/src/attribute.rs crates/types/src/auth.rs crates/types/src/error.rs crates/types/src/names.rs crates/types/src/pattern.rs crates/types/src/time.rs

/root/repo/target/release/deps/librls_types-06fc8bc62433faea.rmeta: crates/types/src/lib.rs crates/types/src/attribute.rs crates/types/src/auth.rs crates/types/src/error.rs crates/types/src/names.rs crates/types/src/pattern.rs crates/types/src/time.rs

crates/types/src/lib.rs:
crates/types/src/attribute.rs:
crates/types/src/auth.rs:
crates/types/src/error.rs:
crates/types/src/names.rs:
crates/types/src/pattern.rs:
crates/types/src/time.rs:
