//! Bounded in-memory span journal.
//!
//! A [`TraceJournal`] holds the most recent N finished spans in a ring
//! buffer behind a single `std::sync::Mutex`. Recording a span is one short
//! critical section (a slot write and two index bumps), so the journal adds
//! negligible cost to the request path even at high throughput; queries walk
//! the ring newest-first under the same lock.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use crate::{mix64, nonzero_id};

/// Process-wide counter so every journal (one per in-process server) gets a
/// distinct trace-ID seed without any entropy source.
static JOURNAL_COUNTER: AtomicU64 = AtomicU64::new(0);

/// One finished span: a named unit of work attributed to a trace.
///
/// `parent_span` is 0 for root spans; child spans (e.g. `lrc.commit` under
/// `op.add`) link to the enclosing span's `span_id` within the same journal.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SpanRecord {
    /// Trace this span belongs to; never 0 in a journal (0 means untraced
    /// on the wire, and the server mints a local ID before recording).
    pub trace_id: u64,
    /// Journal-local span identity, sequential from 1.
    pub span_id: u64,
    /// `span_id` of the enclosing span, or 0 for a root span.
    pub parent_span: u64,
    /// Span name, e.g. `op.add`, `lrc.commit`, `softstate.delta_send`,
    /// `rli.apply_delta`, `rli.expire_sweep`.
    pub op: String,
    /// Start offset in microseconds since the journal was created.
    pub start_micros: u64,
    /// Wall-clock duration of the work in microseconds.
    pub duration_micros: u64,
    /// Whether the work succeeded.
    pub ok: bool,
    /// Free-form annotation: error code, target server, reclaim count, ...
    pub detail: String,
}

/// Filter for [`TraceJournal::query`]; all clauses are ANDed.
#[derive(Debug, Clone, Default)]
pub struct TraceQueryFilter {
    /// Exact trace ID, or 0 to match any trace.
    pub trace_id: u64,
    /// Span-name prefix (empty matches every op).
    pub op_prefix: String,
    /// Minimum span duration in microseconds.
    pub min_duration_micros: u64,
    /// Maximum number of spans returned (0 means no limit).
    pub limit: usize,
}

struct Ring {
    slots: Vec<SpanRecord>,
    /// Next slot to overwrite once the ring is full.
    next: usize,
}

struct Shared {
    capacity: usize,
    recorded: AtomicU64,
    ring: Mutex<Ring>,
}

impl Shared {
    fn push(&self, rec: SpanRecord) {
        self.recorded.fetch_add(1, Ordering::Relaxed);
        if self.capacity == 0 {
            return;
        }
        let mut ring = self.ring.lock().unwrap();
        if ring.slots.len() < self.capacity {
            ring.slots.push(rec);
        } else {
            let at = ring.next;
            ring.slots[at] = rec;
        }
        ring.next = (ring.next + 1) % self.capacity;
    }
}

/// A bounded journal of finished spans plus the trace/span ID mints.
pub struct TraceJournal {
    epoch: Instant,
    seed: u64,
    next_span: AtomicU64,
    next_trace: AtomicU64,
    shared: Arc<Shared>,
}

impl TraceJournal {
    /// Creates a journal holding at most `capacity` spans (0 disables
    /// recording entirely; ID minting still works).
    pub fn new(capacity: usize) -> Self {
        let n = JOURNAL_COUNTER.fetch_add(1, Ordering::Relaxed);
        // Distinct per journal within a process, and distinct across
        // processes on one host via the pid — no clock or RNG involved.
        let seed = mix64(((std::process::id() as u64) << 32) ^ n);
        TraceJournal {
            epoch: Instant::now(),
            seed,
            next_span: AtomicU64::new(0),
            next_trace: AtomicU64::new(0),
            shared: Arc::new(Shared {
                capacity,
                recorded: AtomicU64::new(0),
                ring: Mutex::new(Ring { slots: Vec::new(), next: 0 }),
            }),
        }
    }

    /// Mints a fresh nonzero trace ID for server-originated work (periodic
    /// updates, expire sweeps, requests that arrived untraced).
    pub fn mint_trace_id(&self) -> u64 {
        let n = self.next_trace.fetch_add(1, Ordering::Relaxed);
        nonzero_id(mix64(self.seed.wrapping_add(n)))
    }

    fn mint_span_id(&self) -> u64 {
        self.next_span.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Opens a span; finish it with [`SpanGuard::finish`]. A guard dropped
    /// without an explicit finish records the span as failed with detail
    /// `"unfinished"` (e.g. an `?` early return on the error path).
    pub fn begin(&self, trace_id: u64, parent_span: u64, op: impl Into<String>) -> SpanGuard {
        SpanGuard {
            shared: Arc::clone(&self.shared),
            rec: SpanRecord {
                trace_id: nonzero_id(trace_id),
                span_id: self.mint_span_id(),
                parent_span,
                op: op.into(),
                start_micros: self.offset_micros(Instant::now()),
                duration_micros: 0,
                ok: false,
                detail: String::new(),
            },
            start: Instant::now(),
            done: false,
        }
    }

    /// Records an already-measured span (used when one timed operation is
    /// attributed to several trace IDs, e.g. a batched delta send).
    #[allow(clippy::too_many_arguments)]
    pub fn record_with(
        &self,
        trace_id: u64,
        parent_span: u64,
        op: impl Into<String>,
        start: Instant,
        duration: Duration,
        ok: bool,
        detail: impl Into<String>,
    ) -> u64 {
        let span_id = self.mint_span_id();
        self.shared.push(SpanRecord {
            trace_id: nonzero_id(trace_id),
            span_id,
            parent_span,
            op: op.into(),
            start_micros: self.offset_micros(start),
            duration_micros: duration.as_micros().min(u64::MAX as u128) as u64,
            ok,
            detail: detail.into(),
        });
        span_id
    }

    fn offset_micros(&self, at: Instant) -> u64 {
        at.saturating_duration_since(self.epoch)
            .as_micros()
            .min(u64::MAX as u128) as u64
    }

    /// Returns matching spans, newest first.
    pub fn query(&self, filter: &TraceQueryFilter) -> Vec<SpanRecord> {
        let limit = if filter.limit == 0 { usize::MAX } else { filter.limit };
        let ring = self.shared.ring.lock().unwrap();
        let len = ring.slots.len();
        let mut out = Vec::new();
        for i in 0..len {
            // Walk backwards from the most recently written slot.
            let at = (ring.next + len - 1 - i) % len;
            let rec = &ring.slots[at];
            let matches = (filter.trace_id == 0 || rec.trace_id == filter.trace_id)
                && (filter.op_prefix.is_empty() || rec.op.starts_with(&filter.op_prefix))
                && rec.duration_micros >= filter.min_duration_micros;
            if matches {
                out.push(rec.clone());
                if out.len() >= limit {
                    break;
                }
            }
        }
        out
    }

    /// Number of spans currently retained (≤ capacity).
    pub fn len(&self) -> usize {
        self.shared.ring.lock().unwrap().slots.len()
    }

    /// True when no spans have been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Configured retention bound.
    pub fn capacity(&self) -> usize {
        self.shared.capacity
    }

    /// Total spans ever recorded, including those evicted from the ring.
    pub fn recorded_total(&self) -> u64 {
        self.shared.recorded.load(Ordering::Relaxed)
    }
}

/// An open span returned by [`TraceJournal::begin`].
pub struct SpanGuard {
    shared: Arc<Shared>,
    rec: SpanRecord,
    start: Instant,
    done: bool,
}

impl SpanGuard {
    /// The span's identity, for parenting child spans.
    pub fn span_id(&self) -> u64 {
        self.rec.span_id
    }

    /// The trace this span was opened under (already nonzero).
    pub fn trace_id(&self) -> u64 {
        self.rec.trace_id
    }

    /// Closes the span and records it in the journal.
    pub fn finish(mut self, ok: bool, detail: impl Into<String>) {
        self.rec.ok = ok;
        self.rec.detail = detail.into();
        self.record();
    }

    fn record(&mut self) {
        self.done = true;
        self.rec.duration_micros = self.start.elapsed().as_micros().min(u64::MAX as u128) as u64;
        self.shared.push(std::mem::take(&mut self.rec));
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.done {
            self.rec.ok = false;
            self.rec.detail = "unfinished".to_owned();
            self.record();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn journal_retains_at_most_capacity_under_heavy_load() {
        let j = TraceJournal::new(512);
        let t0 = Instant::now();
        for i in 0..100_000u64 {
            j.record_with(i + 1, 0, "op.add", t0, Duration::from_micros(i % 50), true, "");
        }
        assert_eq!(j.len(), 512);
        assert_eq!(j.capacity(), 512);
        assert_eq!(j.recorded_total(), 100_000);
        // Newest-first: the last span recorded comes back first.
        let all = j.query(&TraceQueryFilter::default());
        assert_eq!(all.len(), 512);
        assert_eq!(all[0].trace_id, 100_000);
        assert_eq!(all[511].trace_id, 100_000 - 511);
    }

    #[test]
    fn zero_capacity_disables_retention_but_counts() {
        let j = TraceJournal::new(0);
        j.record_with(1, 0, "op.add", Instant::now(), Duration::ZERO, true, "");
        assert_eq!(j.len(), 0);
        assert!(j.is_empty());
        assert_eq!(j.recorded_total(), 1);
    }

    #[test]
    fn query_filters_compose() {
        let j = TraceJournal::new(16);
        let t0 = Instant::now();
        j.record_with(7, 0, "op.add", t0, Duration::from_micros(10), true, "");
        j.record_with(7, 0, "lrc.commit", t0, Duration::from_micros(900), true, "");
        j.record_with(9, 0, "op.add", t0, Duration::from_micros(5), false, "boom");

        let by_trace = j.query(&TraceQueryFilter { trace_id: 7, ..Default::default() });
        assert_eq!(by_trace.len(), 2);

        let by_op = j.query(&TraceQueryFilter { op_prefix: "op.".into(), ..Default::default() });
        assert_eq!(by_op.len(), 2);
        assert!(by_op.iter().all(|s| s.op.starts_with("op.")));

        let slow = j.query(&TraceQueryFilter { min_duration_micros: 100, ..Default::default() });
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].op, "lrc.commit");

        let limited = j.query(&TraceQueryFilter { limit: 1, ..Default::default() });
        assert_eq!(limited.len(), 1);
        assert_eq!(limited[0].trace_id, 9); // newest first
    }

    #[test]
    fn guard_records_on_finish_and_on_drop() {
        let j = TraceJournal::new(8);
        let span = j.begin(3, 0, "op.query");
        let parent = span.span_id();
        let child = j.begin(3, parent, "lrc.commit");
        child.finish(true, "1 row");
        span.finish(true, "");
        {
            let _abandoned = j.begin(4, 0, "op.delete");
            // dropped without finish
        }
        let spans = j.query(&TraceQueryFilter::default());
        assert_eq!(spans.len(), 3);
        let dropped = spans.iter().find(|s| s.op == "op.delete").unwrap();
        assert!(!dropped.ok);
        assert_eq!(dropped.detail, "unfinished");
        let commit = spans.iter().find(|s| s.op == "lrc.commit").unwrap();
        assert_eq!(commit.parent_span, parent);
        assert_eq!(commit.trace_id, 3);
    }

    #[test]
    fn minted_ids_are_nonzero_and_distinct() {
        let j = TraceJournal::new(1);
        let a = j.mint_trace_id();
        let b = j.mint_trace_id();
        assert_ne!(a, 0);
        assert_ne!(b, 0);
        assert_ne!(a, b);
        // Journals mint from distinct seeds.
        let other = TraceJournal::new(1);
        assert_ne!(other.mint_trace_id(), a);
    }

    #[test]
    fn untraced_spans_get_trace_id_one() {
        let j = TraceJournal::new(4);
        j.begin(0, 0, "op.ping").finish(true, "");
        assert_eq!(j.query(&TraceQueryFilter::default())[0].trace_id, 1);
    }
}
