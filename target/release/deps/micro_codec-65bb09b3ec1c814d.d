/root/repo/target/release/deps/micro_codec-65bb09b3ec1c814d.d: crates/bench/benches/micro_codec.rs

/root/repo/target/release/deps/micro_codec-65bb09b3ec1c814d: crates/bench/benches/micro_codec.rs

crates/bench/benches/micro_codec.rs:
