//! `rls-cli` — command-line client for an RLS server, in the spirit of the
//! original `globus-rls-cli`.
//!
//! ```text
//! rls-cli <server> ping
//! rls-cli <server> create <lfn> <pfn>
//! rls-cli <server> add <lfn> <pfn>
//! rls-cli <server> delete <lfn> <pfn>
//! rls-cli <server> query <lfn>
//! rls-cli <server> query-pfn <pfn>
//! rls-cli <server> wildcard <glob> [limit]
//! rls-cli <server> bulk-create            # reads "lfn pfn" lines on stdin
//! rls-cli <server> attr-define <name> <logical|target> <str|int|float|date>
//! rls-cli <server> attr-add <obj> <logical|target> <name> <value>
//! rls-cli <server> attr-get <obj> <logical|target>
//! rls-cli <server> add-rli <addr> [bloom] [pattern...]
//! rls-cli <server> remove-rli <addr>
//! rls-cli <server> list-rlis
//! rls-cli <server> rli-query <lfn>
//! rls-cli <server> rli-wildcard <glob> [limit]
//! rls-cli <server> rli-lrcs
//! rls-cli <server> stats [--json]
//! rls-cli <server> history [--json] [--since <seq>] [--limit <n>]
//! rls-cli <server> top [--interval-ms <n>] [--iterations <n>] [--no-color]
//!                      [--stale-warn-ms <n>] [--stale-crit-ms <n>]
//! rls-cli <server> trace [--id <trace-id>] [--op <prefix>] [--min-us <n>] [--limit <n>]
//! ```
//!
//! Mutating commands print the trace ID the client attached to the request
//! (16-digit hex); feed it back to `trace --id` to inspect the spans it
//! left in the server's journal.
//!
//! The identity presented to the server comes from `$RLS_DN` (defaults to
//! the anonymous DN).

use std::io::BufRead;
use std::process::ExitCode;

use rls::core::{RlsClient, FLAG_BLOOM};
use rls::types::{AttrValue, AttrValueType, AttributeDef, Dn, Mapping, ObjectType, Timestamp};

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            rls_trace::error!("rls-cli", "command failed", error = e);
            ExitCode::FAILURE
        }
    }
}

/// Parses a trace ID as printed by this tool (16-digit hex), with `0x`
/// hex and plain decimal accepted too.
fn parse_trace_id(s: &str) -> Result<u64, String> {
    let parsed = if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16)
    } else if s.len() == 16 && s.bytes().all(|b| b.is_ascii_hexdigit()) {
        u64::from_str_radix(s, 16)
    } else {
        s.parse::<u64>()
    };
    parsed.map_err(|_| format!("bad trace id {s:?} (expected hex or decimal)"))
}

fn objtype(s: &str) -> Result<ObjectType, String> {
    match s {
        "logical" | "lfn" => Ok(ObjectType::Logical),
        "target" | "pfn" => Ok(ObjectType::Target),
        other => Err(format!("expected logical|target, got {other:?}")),
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (server, cmd, rest) = match args.as_slice() {
        [server, cmd, rest @ ..] => (server.clone(), cmd.clone(), rest.to_vec()),
        _ => {
            return Err("usage: rls-cli <server> <command> [args] (see the doc comment)".into());
        }
    };
    let dn = std::env::var("RLS_DN")
        .map(Dn::new)
        .unwrap_or_else(|_| Dn::anonymous());
    let mut client = RlsClient::connect(server.as_str(), &dn)?;

    let arg = |i: usize, what: &str| -> Result<&String, String> {
        rest.get(i).ok_or_else(|| format!("missing argument: {what}"))
    };

    match cmd.as_str() {
        "ping" => {
            client.ping()?;
            println!(
                "pong from {} (lrc={}, rli={})",
                client.server_version(),
                client.server_is_lrc(),
                client.server_is_rli()
            );
        }
        "create" => {
            client.create_mapping(arg(0, "lfn")?, arg(1, "pfn")?)?;
            println!("created (trace {:016x})", client.last_trace_id());
        }
        "add" => {
            client.add_mapping(arg(0, "lfn")?, arg(1, "pfn")?)?;
            println!("added (trace {:016x})", client.last_trace_id());
        }
        "delete" => {
            client.delete_mapping(arg(0, "lfn")?, arg(1, "pfn")?)?;
            println!("deleted (trace {:016x})", client.last_trace_id());
        }
        "query" => {
            for t in client.query_lfn(arg(0, "lfn")?)? {
                println!("{t}");
            }
        }
        "query-pfn" => {
            for l in client.query_pfn(arg(0, "pfn")?)? {
                println!("{l}");
            }
        }
        "wildcard" => {
            let limit = rest.get(1).and_then(|s| s.parse().ok()).unwrap_or(1000);
            for m in client.wildcard_query_lfn(arg(0, "glob")?, limit)? {
                println!("{} {}", m.logical, m.target);
            }
        }
        "bulk-create" => {
            let stdin = std::io::stdin();
            let mut mappings = Vec::new();
            for line in stdin.lock().lines() {
                let line = line?;
                let mut parts = line.split_whitespace();
                if let (Some(lfn), Some(pfn)) = (parts.next(), parts.next()) {
                    mappings.push(Mapping::new(lfn, pfn)?);
                }
            }
            let total = mappings.len();
            let failures = client.bulk_create(mappings)?;
            println!("{} created, {} failed", total - failures.len(), failures.len());
            for (idx, err) in failures {
                rls_trace::warn!("rls-cli", "bulk item failed", item = idx, error = err);
            }
        }
        "attr-define" => {
            let vt = match arg(2, "type")?.as_str() {
                "str" | "string" => AttrValueType::Str,
                "int" => AttrValueType::Int,
                "float" => AttrValueType::Float,
                "date" => AttrValueType::Date,
                other => return Err(format!("unknown attribute type {other:?}").into()),
            };
            client.define_attribute(AttributeDef::new(
                arg(0, "name")?.as_str(),
                objtype(arg(1, "objtype")?)?,
                vt,
            )?)?;
            println!("defined");
        }
        "attr-add" => {
            let raw = arg(3, "value")?;
            // Infer the value type from the literal: int, then float, then
            // unix-seconds date prefixed with '@', else string.
            let value = if let Some(secs) = raw.strip_prefix('@') {
                AttrValue::Date(Timestamp::from_unix_secs(secs.parse()?))
            } else if let Ok(i) = raw.parse::<i64>() {
                AttrValue::Int(i)
            } else if let Ok(f) = raw.parse::<f64>() {
                AttrValue::Float(f)
            } else {
                AttrValue::Str(raw.clone())
            };
            client.add_attribute(
                arg(0, "object")?,
                objtype(arg(1, "objtype")?)?,
                arg(2, "name")?,
                value,
            )?;
            println!("attribute added");
        }
        "attr-get" => {
            for (name, value) in
                client.get_attributes(arg(0, "object")?, objtype(arg(1, "objtype")?)?, None)?
            {
                println!("{name} = {value}");
            }
        }
        "add-rli" => {
            let addr = arg(0, "rli address")?;
            let bloom = rest.iter().any(|s| s == "bloom");
            let patterns: Vec<String> = rest[1..]
                .iter()
                .filter(|s| s.as_str() != "bloom")
                .cloned()
                .collect();
            let flags = if bloom { FLAG_BLOOM } else { 0 };
            client.add_rli(addr, flags, patterns)?;
            println!("RLI registered");
        }
        "remove-rli" => {
            client.remove_rli(arg(0, "rli address")?)?;
            println!("RLI removed");
        }
        "list-rlis" => {
            for rli in client.list_rlis()? {
                let mode = if rli.flags & FLAG_BLOOM != 0 { "bloom" } else { "full" };
                println!("{} [{mode}] {}", rli.name, rli.patterns.join(" "));
            }
        }
        "rli-query" => {
            for hit in client.rli_query_lfn(arg(0, "lfn")?)? {
                println!("{}", hit.lrc);
            }
        }
        "rli-wildcard" => {
            let limit = rest.get(1).and_then(|s| s.parse().ok()).unwrap_or(1000);
            for (lfn, lrc) in client.rli_wildcard_query(arg(0, "glob")?, limit)? {
                println!("{lfn} {lrc}");
            }
        }
        "rli-lrcs" => {
            for lrc in client.rli_list_lrcs()? {
                println!("{lrc}");
            }
        }
        "stats" => {
            let s = client.stats()?;
            if rest.iter().any(|a| a == "--json") {
                println!("{}", rls::core::format_stats_json(&s));
            } else {
                print!("{}", rls::core::format_stats_report(&s));
            }
        }
        "history" => {
            let mut since = 0u64;
            let mut limit = 0u32;
            let mut json = false;
            let mut it = rest.iter();
            while let Some(flag) = it.next() {
                let mut val = |what: &str| -> Result<&String, String> {
                    it.next().ok_or_else(|| format!("{flag} needs {what}"))
                };
                match flag.as_str() {
                    "--json" => json = true,
                    "--since" => since = val("a sample seq")?.parse()?,
                    "--limit" => limit = val("a count")?.parse()?,
                    other => return Err(format!("unknown history flag {other:?}").into()),
                }
            }
            let h = client.stats_history(since, limit)?;
            if json {
                println!("{}", rls::core::format_history_json(&h));
            } else {
                println!(
                    "{} sample(s) retained (of {} captured, ring {} @ {}ms cadence)",
                    h.samples.len(),
                    h.samples_total,
                    h.ring_capacity,
                    h.interval_micros / 1000
                );
                for s in &h.samples {
                    println!(
                        "  #{:<6} uptime {:>10.1}s  {} counters, {} histograms",
                        s.seq,
                        s.uptime_micros as f64 / 1e6,
                        s.counters.len(),
                        s.histograms.len()
                    );
                }
            }
        }
        "top" => {
            let mut opts = rls::core::TopOptions::default();
            let mut interval_ms = 0u64; // 0 = follow the server's cadence
            let mut iterations = 0u64; // 0 = until interrupted
            let mut it = rest.iter();
            while let Some(flag) = it.next() {
                let mut val = |what: &str| -> Result<&String, String> {
                    it.next().ok_or_else(|| format!("{flag} needs {what}"))
                };
                match flag.as_str() {
                    "--interval-ms" => interval_ms = val("milliseconds")?.parse()?,
                    "--iterations" => iterations = val("a count")?.parse()?,
                    "--no-color" => opts.color = false,
                    "--stale-warn-ms" => opts.stale_warn_ms = val("milliseconds")?.parse()?,
                    "--stale-crit-ms" => opts.stale_crit_ms = val("milliseconds")?.parse()?,
                    other => return Err(format!("unknown top flag {other:?}").into()),
                }
            }
            // Seed from the two newest retained samples so the first frame
            // already shows a window, then follow the ring with a cursor.
            let mut window: Vec<rls::metrics::TelemetrySample> = Vec::new();
            let mut cursor = 0u64;
            let mut frames = 0u64;
            loop {
                // `since` is exclusive: the cursor is the last seq seen.
                let h = client.stats_history(cursor, if cursor == 0 { 2 } else { 0 })?;
                if let Some(last) = h.samples.last() {
                    cursor = last.seq;
                }
                window.extend(h.samples);
                if window.len() > 2 {
                    window.drain(..window.len() - 2);
                }
                if opts.color {
                    print!("\x1b[2J\x1b[H"); // clear screen, home cursor
                }
                println!("rls-cli top — {server}");
                print!("{}", rls::core::render_top(&window, h.interval_micros, &opts));
                use std::io::Write;
                std::io::stdout().flush()?;
                frames += 1;
                if iterations != 0 && frames >= iterations {
                    break;
                }
                let ms = if interval_ms != 0 {
                    interval_ms
                } else {
                    (h.interval_micros / 1000).clamp(100, 60_000)
                };
                std::thread::sleep(std::time::Duration::from_millis(ms));
            }
        }
        "trace" => {
            let mut trace_id = 0u64;
            let mut op_prefix = String::new();
            let mut min_us = 0u64;
            let mut limit = 100u32;
            let mut it = rest.iter();
            while let Some(flag) = it.next() {
                let mut val = |what: &str| -> Result<&String, String> {
                    it.next().ok_or_else(|| format!("{flag} needs {what}"))
                };
                match flag.as_str() {
                    "--id" => trace_id = parse_trace_id(val("a trace id")?)?,
                    "--op" => op_prefix = val("an op prefix")?.clone(),
                    "--min-us" => min_us = val("a duration in us")?.parse()?,
                    "--limit" => limit = val("a count")?.parse()?,
                    other => return Err(format!("unknown trace flag {other:?}").into()),
                }
            }
            let spans = client.trace_query(trace_id, &op_prefix, min_us, limit)?;
            print!("{}", rls::core::format_trace_report(&spans));
        }
        other => return Err(format!("unknown command {other:?}").into()),
    }
    Ok(())
}
