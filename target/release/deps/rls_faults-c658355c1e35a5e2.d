/root/repo/target/release/deps/rls_faults-c658355c1e35a5e2.d: crates/faults/src/lib.rs

/root/repo/target/release/deps/librls_faults-c658355c1e35a5e2.rlib: crates/faults/src/lib.rs

/root/repo/target/release/deps/librls_faults-c658355c1e35a5e2.rmeta: crates/faults/src/lib.rs

crates/faults/src/lib.rs:
