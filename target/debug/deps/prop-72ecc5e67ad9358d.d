/root/repo/target/debug/deps/prop-72ecc5e67ad9358d.d: crates/types/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-72ecc5e67ad9358d.rmeta: crates/types/tests/prop.rs Cargo.toml

crates/types/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
