/root/repo/target/release/deps/fig12_uncompressed_updates-dbc98f4b4973b02d.d: crates/bench/benches/fig12_uncompressed_updates.rs

/root/repo/target/release/deps/fig12_uncompressed_updates-dbc98f4b4973b02d: crates/bench/benches/fig12_uncompressed_updates.rs

crates/bench/benches/fig12_uncompressed_updates.rs:
