/root/repo/target/debug/deps/timing-a6afc53620bb8a0d.d: crates/net/tests/timing.rs

/root/repo/target/debug/deps/libtiming-a6afc53620bb8a0d.rmeta: crates/net/tests/timing.rs

crates/net/tests/timing.rs:
