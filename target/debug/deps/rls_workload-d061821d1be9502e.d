/root/repo/target/debug/deps/rls_workload-d061821d1be9502e.d: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/driver.rs crates/workload/src/namegen.rs crates/workload/src/stats.rs

/root/repo/target/debug/deps/librls_workload-d061821d1be9502e.rmeta: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/driver.rs crates/workload/src/namegen.rs crates/workload/src/stats.rs

crates/workload/src/lib.rs:
crates/workload/src/dist.rs:
crates/workload/src/driver.rs:
crates/workload/src/namegen.rs:
crates/workload/src/stats.rs:
