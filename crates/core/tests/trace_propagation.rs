//! Trace-propagation integration tests: the trace ID a client attaches to
//! a request follows the operation across the soft-state plane — LRC
//! commit, immediate-mode delta send, RLI apply — and every server's span
//! journal stays bounded at its configured capacity.

use rls_core::testkit::TestDeployment;
use rls_core::{LrcConfig, RlsClient, Server, ServerConfig};
use rls_proto::Request;
use rls_trace::TraceQueryFilter;
use rls_types::Dn;

fn by_trace(trace_id: u64) -> TraceQueryFilter {
    TraceQueryFilter {
        trace_id,
        ..TraceQueryFilter::default()
    }
}

/// The end-to-end demo of the tracing design: one client write on the LRC,
/// one forced delta flush, and the same trace ID shows up in both servers'
/// journals covering every hop.
#[test]
fn trace_id_follows_delta_from_lrc_to_rli() {
    let dep = TestDeployment::builder()
        .lrcs(1)
        .rlis(1)
        .immediate(true)
        .build()
        .unwrap();
    let mut c = dep.lrc_client(0).unwrap();
    c.create_mapping("lfn://trace/a", "pfn://trace/a").unwrap();
    let trace_id = c.last_trace_id();
    assert_ne!(trace_id, 0, "client mints a trace id per request");
    for r in dep.flush_deltas() {
        r.unwrap();
    }

    // LRC journal: the request's root span, the catalog commit under it,
    // and the delta send that carried the change out.
    let lrc_spans = dep.lrcs[0].state().journal.query(&by_trace(trace_id));
    let ops: Vec<&str> = lrc_spans.iter().map(|s| s.op.as_str()).collect();
    assert!(ops.contains(&"op.create"), "missing op.create in {ops:?}");
    assert!(ops.contains(&"lrc.commit"), "missing lrc.commit in {ops:?}");
    assert!(
        ops.contains(&"softstate.delta_send"),
        "missing softstate.delta_send in {ops:?}"
    );
    let root = lrc_spans.iter().find(|s| s.op == "op.create").unwrap();
    let commit = lrc_spans.iter().find(|s| s.op == "lrc.commit").unwrap();
    assert_eq!(root.parent_span, 0);
    assert_eq!(commit.parent_span, root.span_id, "commit links to the root span");
    assert!(lrc_spans.iter().all(|s| s.ok));

    // RLI journal: the apply span carries the propagated trace ID.
    let rli_spans = dep.rlis[0].state().journal.query(&by_trace(trace_id));
    assert!(
        rli_spans.iter().any(|s| s.op == "rli.apply_delta"),
        "RLI journal missing rli.apply_delta for trace {trace_id:#x}"
    );

    // The same spans are reachable over the wire via TraceQuery.
    let mut rc = dep.rli_client(0).unwrap();
    let wire = rc.trace_query(trace_id, "rli.", 0, 0).unwrap();
    assert!(wire.iter().any(|s| s.op == "rli.apply_delta" && s.trace_id == trace_id));
    let none = rc.trace_query(trace_id, "op.nomatch", 0, 0).unwrap();
    assert!(none.is_empty());
}

/// A frame sent without a trace envelope is served normally and gets a
/// server-minted trace ID instead of going untraced.
#[test]
fn untraced_frame_is_served_and_minted_locally() {
    let dep = TestDeployment::builder().lrcs(1).rlis(0).build().unwrap();
    let mut c = dep.lrc_client(0).unwrap();
    let before = dep.lrcs[0].state().journal.recorded_total();
    // call_traced with no IDs encodes a plain (pre-tracing) frame.
    c.call_traced(&Request::Ping, &[]).unwrap();
    assert_eq!(c.last_trace_id(), 0, "untraced call reports no trace id");
    let journal = &dep.lrcs[0].state().journal;
    assert!(journal.recorded_total() > before);
    let spans = journal.query(&TraceQueryFilter {
        op_prefix: "op.ping".to_owned(),
        ..TraceQueryFilter::default()
    });
    let ping = spans.first().expect("ping span recorded");
    assert_ne!(ping.trace_id, 0, "server mints an ID for untraced frames");
}

/// The journal is a ring: a workload far larger than the configured
/// capacity leaves exactly `capacity` spans behind.
#[test]
fn journal_is_bounded_at_configured_capacity() {
    let config = ServerConfig {
        lrc: Some(LrcConfig::default()),
        trace_journal_capacity: 64,
        ..ServerConfig::default()
    };
    let server = Server::start(config).unwrap();
    let mut c = RlsClient::connect(server.addr(), &Dn::anonymous()).unwrap();
    // Mix writes (which add lrc.commit child spans) with reads.
    for i in 0..1000 {
        c.create_mapping(&format!("lfn://cap/{i}"), &format!("pfn://cap/{i}"))
            .unwrap();
        c.ping().unwrap();
    }
    let journal = &server.state().journal;
    assert_eq!(journal.capacity(), 64);
    assert_eq!(journal.len(), 64, "ring holds exactly the configured capacity");
    assert!(journal.recorded_total() >= 3000);
    // Unfiltered query is capped by what the ring retains.
    assert_eq!(journal.query(&TraceQueryFilter::default()).len(), 64);
    server.shutdown();
}

/// Capacity 0 disables retention entirely while IDs still mint.
#[test]
fn zero_capacity_disables_retention() {
    let config = ServerConfig {
        lrc: Some(LrcConfig::default()),
        trace_journal_capacity: 0,
        ..ServerConfig::default()
    };
    let server = Server::start(config).unwrap();
    let mut c = RlsClient::connect(server.addr(), &Dn::anonymous()).unwrap();
    c.create_mapping("lfn://zero/a", "pfn://zero/a").unwrap();
    assert_ne!(c.last_trace_id(), 0);
    let journal = &server.state().journal;
    assert_eq!(journal.len(), 0);
    assert!(journal.query(&TraceQueryFilter::default()).is_empty());
    server.shutdown();
}

/// Full-mode updates and the expire sweep mint their own trace IDs so
/// background work is attributable too.
#[test]
fn background_work_is_traced_with_fresh_ids() {
    let dep = TestDeployment::builder().lrcs(1).rlis(1).build().unwrap();
    let mut c = dep.lrc_client(0).unwrap();
    c.create_mapping("lfn://bg/a", "pfn://bg/a").unwrap();
    for r in dep.force_updates() {
        r.unwrap();
    }
    dep.force_expire().unwrap();

    let lrc_sends = dep.lrcs[0].state().journal.query(&TraceQueryFilter {
        op_prefix: "softstate.full_send".to_owned(),
        ..TraceQueryFilter::default()
    });
    let send = lrc_sends.first().expect("full send span");
    assert_ne!(send.trace_id, 0);

    let rli_journal = &dep.rlis[0].state().journal;
    let applies = rli_journal.query(&TraceQueryFilter {
        op_prefix: "rli.apply_full".to_owned(),
        ..TraceQueryFilter::default()
    });
    assert!(
        applies.iter().any(|s| s.trace_id == send.trace_id),
        "RLI apply shares the update's minted trace id"
    );
    let sweeps = rli_journal.query(&TraceQueryFilter {
        op_prefix: "rli.expire_sweep".to_owned(),
        ..TraceQueryFilter::default()
    });
    let sweep = sweeps.first().expect("expire sweep span");
    assert_ne!(sweep.trace_id, 0);
    assert!(sweep.ok);
    assert!(sweep.detail.starts_with("expired="));
}
