/root/repo/target/release/deps/rls_server-0b09f0e2f249e09b.d: src/bin/rls-server.rs

/root/repo/target/release/deps/rls_server-0b09f0e2f249e09b: src/bin/rls-server.rs

src/bin/rls-server.rs:
