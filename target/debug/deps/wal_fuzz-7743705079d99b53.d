/root/repo/target/debug/deps/wal_fuzz-7743705079d99b53.d: crates/storage/tests/wal_fuzz.rs Cargo.toml

/root/repo/target/debug/deps/libwal_fuzz-7743705079d99b53.rmeta: crates/storage/tests/wal_fuzz.rs Cargo.toml

crates/storage/tests/wal_fuzz.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
