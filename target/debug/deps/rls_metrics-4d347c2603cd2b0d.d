/root/repo/target/debug/deps/rls_metrics-4d347c2603cd2b0d.d: crates/metrics/src/lib.rs crates/metrics/src/histogram.rs crates/metrics/src/registry.rs crates/metrics/src/telemetry.rs

/root/repo/target/debug/deps/librls_metrics-4d347c2603cd2b0d.rmeta: crates/metrics/src/lib.rs crates/metrics/src/histogram.rs crates/metrics/src/registry.rs crates/metrics/src/telemetry.rs

crates/metrics/src/lib.rs:
crates/metrics/src/histogram.rs:
crates/metrics/src/registry.rs:
crates/metrics/src/telemetry.rs:
