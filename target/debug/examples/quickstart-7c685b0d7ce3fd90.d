/root/repo/target/debug/examples/quickstart-7c685b0d7ce3fd90.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-7c685b0d7ce3fd90: examples/quickstart.rs

examples/quickstart.rs:
