/root/repo/target/release/deps/fig04_lrc_add_flush-8b95952439cf5922.d: crates/bench/benches/fig04_lrc_add_flush.rs

/root/repo/target/release/deps/fig04_lrc_add_flush-8b95952439cf5922: crates/bench/benches/fig04_lrc_add_flush.rs

crates/bench/benches/fig04_lrc_add_flush.rs:
