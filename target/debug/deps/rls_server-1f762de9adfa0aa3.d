/root/repo/target/debug/deps/rls_server-1f762de9adfa0aa3.d: src/bin/rls-server.rs

/root/repo/target/debug/deps/librls_server-1f762de9adfa0aa3.rmeta: src/bin/rls-server.rs

src/bin/rls-server.rs:
