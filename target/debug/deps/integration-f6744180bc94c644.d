/root/repo/target/debug/deps/integration-f6744180bc94c644.d: tests/integration.rs

/root/repo/target/debug/deps/libintegration-f6744180bc94c644.rmeta: tests/integration.rs

tests/integration.rs:
