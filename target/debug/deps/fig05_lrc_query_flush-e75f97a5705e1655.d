/root/repo/target/debug/deps/fig05_lrc_query_flush-e75f97a5705e1655.d: crates/bench/benches/fig05_lrc_query_flush.rs

/root/repo/target/debug/deps/fig05_lrc_query_flush-e75f97a5705e1655: crates/bench/benches/fig05_lrc_query_flush.rs

crates/bench/benches/fig05_lrc_query_flush.rs:
