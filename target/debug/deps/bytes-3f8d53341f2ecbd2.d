/root/repo/target/debug/deps/bytes-3f8d53341f2ecbd2.d: /tmp/vendor/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-3f8d53341f2ecbd2.rlib: /tmp/vendor/bytes/src/lib.rs

/root/repo/target/debug/deps/libbytes-3f8d53341f2ecbd2.rmeta: /tmp/vendor/bytes/src/lib.rs

/tmp/vendor/bytes/src/lib.rs:
