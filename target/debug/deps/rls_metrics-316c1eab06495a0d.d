/root/repo/target/debug/deps/rls_metrics-316c1eab06495a0d.d: crates/metrics/src/lib.rs crates/metrics/src/histogram.rs crates/metrics/src/registry.rs crates/metrics/src/telemetry.rs

/root/repo/target/debug/deps/librls_metrics-316c1eab06495a0d.rlib: crates/metrics/src/lib.rs crates/metrics/src/histogram.rs crates/metrics/src/registry.rs crates/metrics/src/telemetry.rs

/root/repo/target/debug/deps/librls_metrics-316c1eab06495a0d.rmeta: crates/metrics/src/lib.rs crates/metrics/src/histogram.rs crates/metrics/src/registry.rs crates/metrics/src/telemetry.rs

crates/metrics/src/lib.rs:
crates/metrics/src/histogram.rs:
crates/metrics/src/registry.rs:
crates/metrics/src/telemetry.rs:
