/root/repo/target/debug/deps/micro_storage-f2f1a84441086665.d: crates/bench/benches/micro_storage.rs Cargo.toml

/root/repo/target/debug/deps/libmicro_storage-f2f1a84441086665.rmeta: crates/bench/benches/micro_storage.rs Cargo.toml

crates/bench/benches/micro_storage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
