/root/repo/target/debug/examples/ligo_catalog-49ad31807752e219.d: examples/ligo_catalog.rs Cargo.toml

/root/repo/target/debug/examples/libligo_catalog-49ad31807752e219.rmeta: examples/ligo_catalog.rs Cargo.toml

examples/ligo_catalog.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
