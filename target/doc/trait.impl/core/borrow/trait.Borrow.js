(function() {
    const implementors = Object.fromEntries([["rls_types",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/borrow/trait.Borrow.html\" title=\"trait core::borrow::Borrow\">Borrow</a>&lt;<a class=\"primitive\" href=\"https://doc.rust-lang.org/1.95.0/std/primitive.str.html\">str</a>&gt; for <a class=\"struct\" href=\"rls_types/names/struct.LogicalName.html\" title=\"struct rls_types::names::LogicalName\">LogicalName</a>",0],["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/borrow/trait.Borrow.html\" title=\"trait core::borrow::Borrow\">Borrow</a>&lt;<a class=\"primitive\" href=\"https://doc.rust-lang.org/1.95.0/std/primitive.str.html\">str</a>&gt; for <a class=\"struct\" href=\"rls_types/names/struct.TargetName.html\" title=\"struct rls_types::names::TargetName\">TargetName</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[790]}