//! # `rls-metrics` — observability primitives for the RLS reproduction
//!
//! Every result in the source paper (*Performance and Scalability of a
//! Replica Location Service*, HPDC 2004) is a latency or throughput
//! measurement: operation rates per client count (Figures 4–6), soft-state
//! update durations and Bloom-filter compression ratios (Table 3, Figures
//! 9–10), and wide-area update behaviour (Figures 11–13). This crate gives
//! the servers a matching measurement surface:
//!
//! * [`LatencyHistogram`] — a fixed-size, log2-bucketed latency histogram
//!   over microseconds with lock-free recording and p50/p90/p99/max
//!   extraction from an immutable [`HistogramSnapshot`].
//! * [`Registry`] — a named, get-or-create registry of histograms and
//!   monotonic counters, snapshotted into plain sorted `Vec`s so the wire
//!   protocol and CLI can carry them without knowing any metric in advance.
//!
//! The crate is deliberately **dependency-free** (std only): it sits below
//! `rls-proto` in the crate graph, and every server role links it, so it
//! must never pull the workspace into heavier build requirements.
//!
//! Values that are conceptually fractional (e.g. a Bloom-filter
//! false-positive probability) are stored in counters as scaled integers —
//! by convention parts-per-million, with a `_ppm` name suffix.

#![warn(missing_docs)]

mod histogram;
mod registry;
mod telemetry;

pub use histogram::{bucket_upper_micros, HistogramSnapshot, LatencyHistogram, BUCKET_COUNT};
pub use registry::{Counter, Registry};
pub use telemetry::{
    counter_delta, counter_window, histogram_delta, histogram_window, rate_per_sec,
    unix_micros_now, Exemplar, TelemetryRing, TelemetrySample,
};
