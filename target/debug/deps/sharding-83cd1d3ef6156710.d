/root/repo/target/debug/deps/sharding-83cd1d3ef6156710.d: crates/core/tests/sharding.rs Cargo.toml

/root/repo/target/debug/deps/libsharding-83cd1d3ef6156710.rmeta: crates/core/tests/sharding.rs Cargo.toml

crates/core/tests/sharding.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/core
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
