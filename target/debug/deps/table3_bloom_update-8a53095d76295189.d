/root/repo/target/debug/deps/table3_bloom_update-8a53095d76295189.d: crates/bench/benches/table3_bloom_update.rs Cargo.toml

/root/repo/target/debug/deps/libtable3_bloom_update-8a53095d76295189.rmeta: crates/bench/benches/table3_bloom_update.rs Cargo.toml

crates/bench/benches/table3_bloom_update.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
