/root/repo/target/release/deps/fig07_native_db-74c42eaf9253e3d8.d: crates/bench/benches/fig07_native_db.rs

/root/repo/target/release/deps/fig07_native_db-74c42eaf9253e3d8: crates/bench/benches/fig07_native_db.rs

crates/bench/benches/fig07_native_db.rs:
