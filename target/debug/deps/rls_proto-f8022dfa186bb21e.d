/root/repo/target/debug/deps/rls_proto-f8022dfa186bb21e.d: crates/proto/src/lib.rs crates/proto/src/codec.rs crates/proto/src/frame.rs crates/proto/src/message.rs

/root/repo/target/debug/deps/librls_proto-f8022dfa186bb21e.rlib: crates/proto/src/lib.rs crates/proto/src/codec.rs crates/proto/src/frame.rs crates/proto/src/message.rs

/root/repo/target/debug/deps/librls_proto-f8022dfa186bb21e.rmeta: crates/proto/src/lib.rs crates/proto/src/codec.rs crates/proto/src/frame.rs crates/proto/src/message.rs

crates/proto/src/lib.rs:
crates/proto/src/codec.rs:
crates/proto/src/frame.rs:
crates/proto/src/message.rs:
