/root/repo/target/debug/deps/micro_pattern-25ee4da6fe057236.d: crates/bench/benches/micro_pattern.rs

/root/repo/target/debug/deps/micro_pattern-25ee4da6fe057236: crates/bench/benches/micro_pattern.rs

crates/bench/benches/micro_pattern.rs:
