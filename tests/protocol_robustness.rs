//! Adversarial protocol tests: raw frames against a live server. A public
//! Grid service must survive malformed, oversized, and out-of-order input.

use rls::core::testkit::TestDeployment;
use rls::net::{connect, LinkProfile};
use rls::proto::{Request, Response, PROTOCOL_VERSION};
use rls::types::{Dn, ErrorCode};

fn hello_frame() -> Vec<u8> {
    Request::Hello {
        dn: Dn::anonymous(),
        version: PROTOCOL_VERSION,
    }
    .encode()
    .into_bytes()
    .to_vec()
}

#[test]
fn request_before_hello_is_rejected() {
    let dep = TestDeployment::builder().lrcs(1).rlis(0).build().unwrap();
    let mut conn = connect(dep.lrcs[0].addr(), LinkProfile::unshaped(), None).unwrap();
    let ping = Request::Ping.encode().into_bytes();
    let resp = conn.request(&ping).unwrap();
    let Response::Error(e) = Response::decode(&resp).unwrap() else {
        panic!("expected error");
    };
    assert_eq!(e.code(), ErrorCode::BadRequest);
}

#[test]
fn wrong_protocol_version_rejected() {
    let dep = TestDeployment::builder().lrcs(1).rlis(0).build().unwrap();
    let mut conn = connect(dep.lrcs[0].addr(), LinkProfile::unshaped(), None).unwrap();
    let hello = Request::Hello {
        dn: Dn::anonymous(),
        version: 999,
    }
    .encode()
    .into_bytes();
    let resp = conn.request(&hello).unwrap();
    let Response::Error(e) = Response::decode(&resp).unwrap() else {
        panic!("expected error");
    };
    assert_eq!(e.code(), ErrorCode::Protocol);
}

#[test]
fn garbage_after_hello_yields_error_not_crash() {
    let dep = TestDeployment::builder().lrcs(1).rlis(0).build().unwrap();
    let mut conn = connect(dep.lrcs[0].addr(), LinkProfile::unshaped(), None).unwrap();
    let ack = conn.request(&hello_frame()).unwrap();
    assert!(matches!(
        Response::decode(&ack).unwrap(),
        Response::HelloAck { .. }
    ));
    // Unknown opcode.
    let resp = conn.request(&[0xFF, 0xFF, 1, 2, 3]).unwrap();
    assert!(matches!(Response::decode(&resp).unwrap(), Response::Error(_)));
    // Truncated body for a known opcode (QueryLfn without its string).
    let resp = conn.request(&[20, 0]).unwrap();
    assert!(matches!(Response::decode(&resp).unwrap(), Response::Error(_)));
    // The connection stays usable afterwards.
    let resp = conn
        .request(&Request::Ping.encode().into_bytes())
        .unwrap();
    assert!(matches!(Response::decode(&resp).unwrap(), Response::Pong));
}

#[test]
fn empty_frame_yields_error() {
    let dep = TestDeployment::builder().lrcs(1).rlis(0).build().unwrap();
    let mut conn = connect(dep.lrcs[0].addr(), LinkProfile::unshaped(), None).unwrap();
    conn.request(&hello_frame()).unwrap();
    let resp = conn.request(&[]).unwrap();
    assert!(matches!(Response::decode(&resp).unwrap(), Response::Error(_)));
}

#[test]
fn abrupt_disconnect_leaves_server_healthy() {
    let dep = TestDeployment::builder().lrcs(1).rlis(0).build().unwrap();
    for _ in 0..20 {
        let mut conn = connect(dep.lrcs[0].addr(), LinkProfile::unshaped(), None).unwrap();
        conn.send(&hello_frame()).unwrap();
        // Drop without reading the ack or closing politely.
        drop(conn);
    }
    // Server still answers.
    let mut c = dep.lrc_client(0).unwrap();
    c.ping().unwrap();
    c.create_mapping("lfn://healthy", "pfn://h").unwrap();
    assert_eq!(c.query_lfn("lfn://healthy").unwrap().len(), 1);
}

#[test]
fn half_written_frame_then_close_is_tolerated() {
    let dep = TestDeployment::builder().lrcs(1).rlis(0).build().unwrap();
    {
        // Raw TCP: announce a large frame, send half of it, vanish.
        use std::io::Write;
        let mut stream = std::net::TcpStream::connect(dep.lrcs[0].addr()).unwrap();
        stream.write_all(&1024u32.to_le_bytes()).unwrap();
        stream.write_all(&[0u8; 100]).unwrap();
        drop(stream);
    }
    let mut c = dep.lrc_client(0).unwrap();
    c.ping().unwrap();
}

#[test]
fn oversized_frame_is_refused() {
    use rls::core::{LrcConfig, Server, ServerConfig};
    // A server with a small frame cap refuses a larger request.
    let server = Server::start(ServerConfig {
        lrc: Some(LrcConfig::default()),
        max_frame: 1024,
        ..ServerConfig::default()
    })
    .unwrap();
    let mut conn = connect(server.addr(), LinkProfile::unshaped(), None).unwrap();
    conn.request(&hello_frame()).unwrap();
    // 4 KiB of Ping padding — decode would fail anyway, but the frame
    // layer must refuse before allocating.
    let big = vec![0u8; 4096];
    conn.send(&big).unwrap();
    // The server drops the connection (frame over cap): either we get a
    // clean EOF or an error, never a hang.
    match conn.recv() {
        Ok(None) | Err(_) => {}
        Ok(Some(body)) => {
            // Acceptable alternative: an error response before close.
            assert!(matches!(Response::decode(&body), Ok(Response::Error(_))));
        }
    }
    // And the server remains healthy for new connections.
    let mut c = rls::core::RlsClient::connect(server.addr(), &Dn::anonymous()).unwrap();
    c.ping().unwrap();
}
