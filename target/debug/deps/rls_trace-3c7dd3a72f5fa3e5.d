/root/repo/target/debug/deps/rls_trace-3c7dd3a72f5fa3e5.d: crates/trace/src/lib.rs crates/trace/src/log.rs crates/trace/src/span.rs

/root/repo/target/debug/deps/librls_trace-3c7dd3a72f5fa3e5.rlib: crates/trace/src/lib.rs crates/trace/src/log.rs crates/trace/src/span.rs

/root/repo/target/debug/deps/librls_trace-3c7dd3a72f5fa3e5.rmeta: crates/trace/src/lib.rs crates/trace/src/log.rs crates/trace/src/span.rs

crates/trace/src/lib.rs:
crates/trace/src/log.rs:
crates/trace/src/span.rs:
