/root/repo/target/debug/examples/ligo_catalog-98f3d7c5d2936d12.d: examples/ligo_catalog.rs

/root/repo/target/debug/examples/ligo_catalog-98f3d7c5d2936d12: examples/ligo_catalog.rs

examples/ligo_catalog.rs:
