/root/repo/target/debug/deps/rls_bench-d59982e0d193cebe.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/rls_bench-d59982e0d193cebe: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
