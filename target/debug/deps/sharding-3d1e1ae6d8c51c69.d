/root/repo/target/debug/deps/sharding-3d1e1ae6d8c51c69.d: crates/core/tests/sharding.rs

/root/repo/target/debug/deps/sharding-3d1e1ae6d8c51c69: crates/core/tests/sharding.rs

crates/core/tests/sharding.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/core
