//! The plain Bloom filter bitmap.

use serde::{Deserialize, Serialize};

use rls_types::{ErrorCode, RlsError, RlsResult};

use crate::hash::DoubleHasher;
use crate::params::BloomParams;

/// A plain Bloom filter: the bitmap the LRC ships to RLIs, and the structure
/// an RLI holds in memory (one per updating LRC).
///
/// Supports insertion and membership tests; deletions require the
/// [`CountingBloomFilter`](crate::CountingBloomFilter) kept on the LRC side.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BloomFilter {
    params: BloomParams,
    /// Number of addressable bits (≤ `words.len() * 64`).
    bits: u64,
    words: Vec<u64>,
    /// Entries inserted (approximate after unions).
    entries: u64,
}

impl BloomFilter {
    /// Creates an empty filter sized for `capacity` expected entries.
    pub fn with_capacity(params: BloomParams, capacity: u64) -> Self {
        let bits = params.bits_for_capacity(capacity);
        Self::with_bits(params, bits)
    }

    /// Creates an empty filter with an explicit bit count.
    pub fn with_bits(params: BloomParams, bits: u64) -> Self {
        let bits = bits.max(64);
        let words = vec![0u64; bits.div_ceil(64) as usize];
        Self {
            params,
            bits,
            words,
            entries: 0,
        }
    }

    /// Rebuilds a filter from raw parts (wire decode, snapshot load).
    pub fn from_parts(params: BloomParams, bits: u64, words: Vec<u64>, entries: u64) -> RlsResult<Self> {
        if bits == 0 || words.len() as u64 != bits.div_ceil(64) {
            return Err(RlsError::new(
                ErrorCode::Protocol,
                format!(
                    "bloom filter shape mismatch: {bits} bits vs {} words",
                    words.len()
                ),
            ));
        }
        Ok(Self {
            params,
            bits,
            words,
            entries,
        })
    }

    /// The filter parameters.
    #[inline]
    pub fn params(&self) -> BloomParams {
        self.params
    }

    /// Number of addressable bits.
    #[inline]
    pub fn bit_len(&self) -> u64 {
        self.bits
    }

    /// Size of the bitmap in bytes (what a soft-state update transfers).
    #[inline]
    pub fn byte_len(&self) -> usize {
        self.words.len() * 8
    }

    /// Approximate number of inserted entries.
    #[inline]
    pub fn entries(&self) -> u64 {
        self.entries
    }

    /// The raw bitmap words.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Inserts a key.
    pub fn insert(&mut self, key: &str) {
        let h = DoubleHasher::new(key.as_bytes());
        for i in 0..self.params.hashes {
            let idx = h.index(i, self.bits);
            self.words[(idx / 64) as usize] |= 1u64 << (idx % 64);
        }
        self.entries += 1;
    }

    /// Membership test. False positives possible, false negatives not.
    pub fn contains(&self, key: &str) -> bool {
        let h = DoubleHasher::new(key.as_bytes());
        (0..self.params.hashes).all(|i| {
            let idx = h.index(i, self.bits);
            self.words[(idx / 64) as usize] & (1u64 << (idx % 64)) != 0
        })
    }

    /// Clears all bits.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
        self.entries = 0;
    }

    /// Number of set bits.
    pub fn set_bits(&self) -> u64 {
        self.words.iter().map(|w| u64::from(w.count_ones())).sum()
    }

    /// Fraction of bits set.
    pub fn fill_ratio(&self) -> f64 {
        if self.bits == 0 {
            0.0
        } else {
            self.set_bits() as f64 / self.bits as f64
        }
    }

    /// Estimated false-positive probability at the current fill level:
    /// `fill_ratio ^ k`.
    pub fn estimated_fpp(&self) -> f64 {
        self.fill_ratio().powi(self.params.hashes as i32)
    }

    /// In-place union with a same-shaped filter.
    ///
    /// Used by hierarchical RLIs that forward aggregated summaries upward
    /// (§7 of the paper).
    pub fn union_with(&mut self, other: &BloomFilter) -> RlsResult<()> {
        if self.bits != other.bits || self.params != other.params {
            return Err(RlsError::new(
                ErrorCode::UpdateRejected,
                "bloom union requires identical shape and parameters",
            ));
        }
        for (w, o) in self.words.iter_mut().zip(&other.words) {
            *w |= o;
        }
        self.entries = self.entries.saturating_add(other.entries);
        Ok(())
    }

    /// True if no bits are set.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filter(cap: u64) -> BloomFilter {
        BloomFilter::with_capacity(BloomParams::PAPER, cap)
    }

    #[test]
    fn no_false_negatives() {
        let mut f = filter(1000);
        let keys: Vec<String> = (0..1000).map(|i| format!("lfn://t/file{i:05}")).collect();
        for k in &keys {
            f.insert(k);
        }
        for k in &keys {
            assert!(f.contains(k), "false negative on {k}");
        }
    }

    #[test]
    fn false_positive_rate_near_design_point() {
        let mut f = filter(10_000);
        for i in 0..10_000 {
            f.insert(&format!("lfn://present/{i}"));
        }
        let mut fp = 0u32;
        let probes = 20_000;
        for i in 0..probes {
            if f.contains(&format!("lfn://absent/{i}")) {
                fp += 1;
            }
        }
        let rate = f64::from(fp) / f64::from(probes);
        // Paper: ~1%. Allow generous slack for hash variance.
        assert!(rate < 0.03, "observed fpp {rate}");
    }

    #[test]
    fn paper_sizing_one_million_entries() {
        let f = filter(1_000_000);
        assert_eq!(f.bit_len(), 10_000_000);
        assert_eq!(f.byte_len(), 10_000_000_usize.div_ceil(64) * 8);
    }

    #[test]
    fn clear_resets() {
        let mut f = filter(100);
        f.insert("a");
        assert!(!f.is_empty());
        f.clear();
        assert!(f.is_empty());
        assert_eq!(f.entries(), 0);
        assert!(!f.contains("a") || f.set_bits() == 0);
    }

    #[test]
    fn union_matches_inserting_both_sets() {
        let mut a = filter(100);
        let mut b = filter(100);
        let mut both = filter(100);
        for i in 0..50 {
            a.insert(&format!("a{i}"));
            both.insert(&format!("a{i}"));
        }
        for i in 0..50 {
            b.insert(&format!("b{i}"));
            both.insert(&format!("b{i}"));
        }
        a.union_with(&b).unwrap();
        assert_eq!(a.words(), both.words());
        assert_eq!(a.entries(), 100);
    }

    #[test]
    fn union_shape_mismatch_rejected() {
        let mut a = filter(100);
        let b = filter(100_000);
        assert!(a.union_with(&b).is_err());
    }

    #[test]
    fn fill_ratio_and_fpp_estimates() {
        let mut f = filter(1000);
        assert_eq!(f.fill_ratio(), 0.0);
        assert_eq!(f.estimated_fpp(), 0.0);
        for i in 0..1000 {
            f.insert(&format!("k{i}"));
        }
        let fill = f.fill_ratio();
        // With 10 bits/entry and 3 hashes, expected fill ≈ 1 - e^{-0.3} ≈ 0.26.
        assert!((0.2..0.35).contains(&fill), "fill={fill}");
        assert!(f.estimated_fpp() < 0.05);
    }

    #[test]
    fn from_parts_validation() {
        let f = filter(100);
        let ok = BloomFilter::from_parts(f.params(), f.bit_len(), f.words().to_vec(), 0);
        assert!(ok.is_ok());
        let bad = BloomFilter::from_parts(f.params(), f.bit_len() + 64, f.words().to_vec(), 0);
        assert!(bad.is_err());
        let zero = BloomFilter::from_parts(f.params(), 0, vec![], 0);
        assert!(zero.is_err());
    }

    #[test]
    fn minimum_filter_still_works() {
        let mut f = BloomFilter::with_bits(BloomParams::PAPER, 1);
        assert_eq!(f.bit_len(), 64);
        f.insert("x");
        assert!(f.contains("x"));
    }
}
