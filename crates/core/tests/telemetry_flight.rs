//! Flight-recorder integration: the telemetry ring, the `StatsHistory`
//! RPC and the soft-state staleness plane, observed over real loopback
//! sockets through `rls-cli`'s own client and renderers.
//!
//! Samples are captured deterministically with
//! `TestDeployment::force_samples` (the stand-in for waiting out the
//! sampler interval), so nothing here sleeps on the background thread.

use rls_core::testkit::TestDeployment;
use rls_core::{format_history_json, render_top, TopOptions};
use rls_proto::ServerStatsWire;

/// Reads a gauge/counter that MUST be present — `0` for a missing name
/// would make staleness assertions pass vacuously.
fn gauge(stats: &ServerStatsWire, name: &str) -> u64 {
    stats
        .counters
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| *v)
        .unwrap_or_else(|| panic!("gauge {name} missing: {:?}", stats.counters))
}

#[test]
fn stats_history_streams_samples_with_cursor() {
    let dep = TestDeployment::builder().lrcs(1).rlis(1).build().unwrap();
    let mut c = dep.lrc_client(0).unwrap();
    c.create_mapping("lfn://fr/a", "pfn://x/a").unwrap();
    dep.force_samples();
    c.query_lfn("lfn://fr/a").unwrap();
    dep.force_samples();

    let h = c.stats_history(0, 0).unwrap();
    assert!(h.interval_micros > 0);
    assert_eq!(h.ring_capacity, 512);
    assert!(h.samples.len() >= 2, "two forced samples: {h:?}");
    assert!(h.samples_total >= h.samples.len() as u64);
    for w in h.samples.windows(2) {
        assert!(w[1].seq > w[0].seq, "seq must be strictly increasing");
    }
    let last = h.samples.last().unwrap();
    assert!(last
        .counters
        .iter()
        .any(|(n, v)| n == "telemetry.samples" && *v >= 2));
    assert!(last
        .histograms
        .iter()
        .any(|(n, s)| n == "op.create" && s.count == 1));

    // Cursor semantics: `since_seq` is exclusive — pass the last seq you
    // saw and you get only what came after.
    let prev = &h.samples[h.samples.len() - 2];
    let tail = c.stats_history(prev.seq, 0).unwrap();
    assert_eq!(tail.samples.len(), 1);
    assert_eq!(tail.samples[0].seq, last.seq);
    assert!(c.stats_history(last.seq, 0).unwrap().samples.is_empty());

    // The CLI surfaces are built from this same wire payload.
    let json = format_history_json(&h);
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    assert!(json.contains("\"telemetry.samples\""));
    let top = render_top(
        &h.samples,
        h.interval_micros,
        &TopOptions {
            color: false,
            ..TopOptions::default()
        },
    );
    // op.query_lfn landed between the two samples, so it has window count.
    assert!(top.contains("op.query_lfn"), "top frame:\n{top}");
}

#[test]
fn staleness_plane_settles_after_update_cycle() {
    let dep = TestDeployment::builder().lrcs(1).rlis(1).build().unwrap();
    let mut c = dep.lrc_client(0).unwrap();
    for i in 0..3 {
        c.create_mapping(&format!("lfn://fr/f{i}"), &format!("pfn://x/f{i}"))
            .unwrap();
    }
    for o in dep.force_updates() {
        o.unwrap();
    }
    dep.force_samples();
    let stats = dep.rli_client(0).unwrap().stats().unwrap();
    // Fresh after a successful update: age and lag both near zero, the
    // claimed count matches what the index holds.
    assert!(gauge(&stats, "rli.lrc.staleness_ms.lrc-0") < 5_000);
    assert!(gauge(&stats, "rli.update_lag_ms.lrc-0") < 5_000);
    assert_eq!(gauge(&stats, "rli.mapping_divergence.lrc-0"), 0);
    // The stamp carried the LRC's commit sequence across the wire.
    assert!(gauge(&stats, "rli.commit_seq.lrc-0") >= 1);
    // And the lag histogram is on the latency report.
    assert!(stats
        .op_latencies
        .iter()
        .any(|(n, s)| n == "rli.update_lag" && s.count >= 1));
}
