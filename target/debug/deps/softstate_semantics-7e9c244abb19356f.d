/root/repo/target/debug/deps/softstate_semantics-7e9c244abb19356f.d: crates/core/tests/softstate_semantics.rs

/root/repo/target/debug/deps/softstate_semantics-7e9c244abb19356f: crates/core/tests/softstate_semantics.rs

crates/core/tests/softstate_semantics.rs:
