/root/repo/target/debug/deps/rls-931cfc4317c08ad7.d: src/lib.rs

/root/repo/target/debug/deps/rls-931cfc4317c08ad7: src/lib.rs

src/lib.rs:
