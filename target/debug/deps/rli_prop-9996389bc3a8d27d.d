/root/repo/target/debug/deps/rli_prop-9996389bc3a8d27d.d: crates/storage/tests/rli_prop.rs

/root/repo/target/debug/deps/librli_prop-9996389bc3a8d27d.rmeta: crates/storage/tests/rli_prop.rs

crates/storage/tests/rli_prop.rs:
