/root/repo/target/debug/examples/pegasus_workflow-90d242460f0e5ee0.d: examples/pegasus_workflow.rs

/root/repo/target/debug/examples/pegasus_workflow-90d242460f0e5ee0: examples/pegasus_workflow.rs

examples/pegasus_workflow.rs:
