/root/repo/target/debug/deps/prop-c21c37436e6b972f.d: crates/storage/tests/prop.rs

/root/repo/target/debug/deps/prop-c21c37436e6b972f: crates/storage/tests/prop.rs

crates/storage/tests/prop.rs:
