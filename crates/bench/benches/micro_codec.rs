//! Criterion micro-benches: wire-codec encode/decode costs, single vs bulk
//! (the per-request overhead that Fig. 11's bulk operations amortize).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use rls_proto::{Request, Response};
use rls_types::Mapping;

fn bench_requests(c: &mut Criterion) {
    let single = Request::Create(
        Mapping::new("lfn://codec/file000000001", "gsiftp://site/data/file000000001").unwrap(),
    );
    let bulk_sizes = [100usize, 1000];
    let mut g = c.benchmark_group("codec/request");
    g.throughput(Throughput::Elements(1));
    g.bench_function("encode_single", |b| b.iter(|| single.encode()));
    let single_bytes = single.encode().into_bytes();
    g.bench_function("decode_single", |b| {
        b.iter(|| Request::decode(&single_bytes).unwrap())
    });
    for &n in &bulk_sizes {
        let bulk = Request::BulkCreate(
            (0..n)
                .map(|i| {
                    Mapping::new(
                        format!("lfn://codec/file{i:09}"),
                        format!("gsiftp://site/data/file{i:09}"),
                    )
                    .unwrap()
                })
                .collect(),
        );
        g.throughput(Throughput::Elements(n as u64));
        g.bench_with_input(BenchmarkId::new("encode_bulk", n), &bulk, |b, bulk| {
            b.iter(|| bulk.encode())
        });
        let bytes = bulk.encode().into_bytes();
        g.bench_with_input(BenchmarkId::new("decode_bulk", n), &bytes, |b, bytes| {
            b.iter(|| Request::decode(bytes).unwrap())
        });
    }
    g.finish();
}

fn bench_responses(c: &mut Criterion) {
    let targets = Response::Targets(
        (0..4)
            .map(|i| format!("gsiftp://site{i}/data/file000000001"))
            .collect(),
    );
    c.bench_function("codec/response_encode_targets", |b| {
        b.iter(|| targets.encode())
    });
    let bytes = targets.encode().into_bytes();
    c.bench_function("codec/response_decode_targets", |b| {
        b.iter(|| Response::decode(&bytes).unwrap())
    });
}

fn bench_bloom_payload(c: &mut Criterion) {
    use rls_bloom::{BloomFilter, BloomParams};
    let mut filter = BloomFilter::with_capacity(BloomParams::PAPER, 100_000);
    for i in 0..100_000 {
        filter.insert(&format!("lfn://codec/{i}"));
    }
    c.bench_function("codec/bloom_to_wire_100k", |b| {
        b.iter(|| Request::bloom_to_wire("lrc-bench", &filter).encode())
    });
    let bytes = Request::bloom_to_wire("lrc-bench", &filter).encode().into_bytes();
    c.bench_function("codec/bloom_decode_100k", |b| {
        b.iter(|| Request::decode(&bytes).unwrap())
    });
}

criterion_group!(benches, bench_requests, bench_responses, bench_bloom_payload);
criterion_main!(benches);
