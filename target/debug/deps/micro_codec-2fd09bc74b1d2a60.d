/root/repo/target/debug/deps/micro_codec-2fd09bc74b1d2a60.d: crates/bench/benches/micro_codec.rs Cargo.toml

/root/repo/target/debug/deps/libmicro_codec-2fd09bc74b1d2a60.rmeta: crates/bench/benches/micro_codec.rs Cargo.toml

crates/bench/benches/micro_codec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
