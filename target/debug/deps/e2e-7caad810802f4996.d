/root/repo/target/debug/deps/e2e-7caad810802f4996.d: crates/core/tests/e2e.rs

/root/repo/target/debug/deps/libe2e-7caad810802f4996.rmeta: crates/core/tests/e2e.rs

crates/core/tests/e2e.rs:
