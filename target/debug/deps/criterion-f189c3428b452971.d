/root/repo/target/debug/deps/criterion-f189c3428b452971.d: /tmp/vendor/criterion/src/lib.rs

/root/repo/target/debug/deps/libcriterion-f189c3428b452971.rmeta: /tmp/vendor/criterion/src/lib.rs

/tmp/vendor/criterion/src/lib.rs:
