/root/repo/target/debug/deps/micro_codec-e8df6c10e1f45ae9.d: crates/bench/benches/micro_codec.rs

/root/repo/target/debug/deps/libmicro_codec-e8df6c10e1f45ae9.rmeta: crates/bench/benches/micro_codec.rs

crates/bench/benches/micro_codec.rs:
