/root/repo/target/debug/examples/pegasus_workflow-948e7c3f2f8cb439.d: examples/pegasus_workflow.rs

/root/repo/target/debug/examples/pegasus_workflow-948e7c3f2f8cb439: examples/pegasus_workflow.rs

examples/pegasus_workflow.rs:
