//! Concurrency stress tests: readers, writers, update cycles and expiry
//! all running simultaneously against live servers, checking invariants
//! rather than exact values.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use rls_core::testkit::TestDeployment;
use rls_core::RlsClient;
use rls_types::{Dn, ErrorCode};

#[test]
fn mixed_readers_writers_and_updates() {
    let dep = TestDeployment::builder().lrcs(1).rlis(1).build().unwrap();
    let addr = dep.lrcs[0].addr();
    let stop = AtomicBool::new(false);

    std::thread::scope(|s| {
        // Writers: each owns a disjoint key space, adds then deletes.
        for w in 0..4 {
            let stop = &stop;
            s.spawn(move || {
                let mut c = RlsClient::connect(addr, &Dn::anonymous()).unwrap();
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let lfn = format!("lfn://stress/{w}/{i}");
                    let pfn = format!("pfn://stress/{w}/{i}");
                    c.create_mapping(&lfn, &pfn).unwrap();
                    if i.is_multiple_of(2) {
                        c.delete_mapping(&lfn, &pfn).unwrap();
                    }
                    i += 1;
                }
            });
        }
        // Readers: point queries over live+missing names; errors must only
        // ever be LogicalNameNotFound.
        for r in 0..4 {
            let stop = &stop;
            s.spawn(move || {
                let mut c = RlsClient::connect(addr, &Dn::anonymous()).unwrap();
                let mut i = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let lfn = format!("lfn://stress/{}/{}", i % 4, (i * 7 + r) % 500);
                    match c.query_lfn(&lfn) {
                        Ok(targets) => assert!(!targets.is_empty()),
                        Err(e) => assert_eq!(e.code(), ErrorCode::LogicalNameNotFound),
                    }
                    i += 1;
                }
            });
        }
        // Wildcard scanners.
        {
            let stop = &stop;
            s.spawn(move || {
                let mut c = RlsClient::connect(addr, &Dn::anonymous()).unwrap();
                while !stop.load(Ordering::Relaxed) {
                    let hits = c.wildcard_query_lfn("lfn://stress/2/*", 100).unwrap();
                    assert!(hits.len() <= 100);
                }
            });
        }
        // Update cycles + expire passes racing the traffic.
        {
            let stop = &stop;
            let dep = &dep;
            s.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    for o in dep.force_updates() {
                        o.unwrap();
                    }
                    dep.force_expire().unwrap();
                    std::thread::sleep(Duration::from_millis(5));
                }
            });
        }
        std::thread::sleep(Duration::from_millis(800));
        stop.store(true, Ordering::Relaxed);
    });

    // Invariants after the dust settles: odd-numbered mappings survive,
    // catalog counters are consistent, the RLI can be fully rebuilt.
    let mut c = dep.lrc_client(0).unwrap();
    let stats = c.stats().unwrap();
    assert_eq!(stats.lrc_lfn_count, stats.lrc_mapping_count); // 1 target each
    for o in dep.force_updates() {
        o.unwrap();
    }
    let mut rli = dep.rli_client(0).unwrap();
    let survivors = c.wildcard_query_lfn("lfn://stress/0/*", 10_000).unwrap();
    for m in survivors.iter().take(20) {
        assert!(!rli.rli_query_lfn(m.logical.as_str()).unwrap().is_empty());
    }
}

#[test]
fn many_short_lived_connections() {
    let dep = TestDeployment::builder().lrcs(1).rlis(0).build().unwrap();
    let addr = dep.lrcs[0].addr();
    std::thread::scope(|s| {
        for t in 0..8 {
            s.spawn(move || {
                for i in 0..30 {
                    let mut c = RlsClient::connect(addr, &Dn::anonymous()).unwrap();
                    c.create_mapping(&format!("lfn://conn/{t}/{i}"), "pfn://x")
                        .unwrap();
                    // Drop without graceful shutdown half the time.
                    if i % 2 == 0 {
                        drop(c);
                    } else {
                        c.ping().unwrap();
                    }
                }
            });
        }
    });
    let mut c = dep.lrc_client(0).unwrap();
    assert_eq!(c.stats().unwrap().lrc_lfn_count, 240);
    // Connection slots were released (only ours remains active-ish).
    std::thread::sleep(Duration::from_millis(100));
    assert!(dep.lrcs[0].active_connections() <= 3);
}

#[test]
fn bulk_and_single_ops_interleaved() {
    use rls_types::Mapping;
    let dep = TestDeployment::builder().lrcs(1).rlis(0).build().unwrap();
    let addr = dep.lrcs[0].addr();
    std::thread::scope(|s| {
        for t in 0..3 {
            s.spawn(move || {
                let mut c = RlsClient::connect(addr, &Dn::anonymous()).unwrap();
                for round in 0..10 {
                    let mappings: Vec<Mapping> = (0..100)
                        .map(|k| {
                            Mapping::new(
                                format!("lfn://bulkmix/{t}/{round}/{k}"),
                                format!("pfn://bulkmix/{t}/{round}/{k}"),
                            )
                            .unwrap()
                        })
                        .collect();
                    assert!(c.bulk_create(mappings.clone()).unwrap().is_empty());
                    assert!(c.bulk_delete(mappings).unwrap().is_empty());
                }
            });
        }
        s.spawn(move || {
            let mut c = RlsClient::connect(addr, &Dn::anonymous()).unwrap();
            for i in 0..300 {
                c.create_mapping(&format!("lfn://single/{i}"), "pfn://s")
                    .unwrap();
            }
        });
    });
    let mut c = dep.lrc_client(0).unwrap();
    // All bulk work cancelled itself out; singles remain.
    assert_eq!(c.stats().unwrap().lrc_lfn_count, 300);
}

#[test]
fn concurrent_bulk_writers_with_mixed_failures() {
    use rls_types::Mapping;
    let dep = TestDeployment::builder().lrcs(1).rlis(0).build().unwrap();
    let addr = dep.lrcs[0].addr();
    // Each writer owns a seed mapping that every later round collides with.
    {
        let mut c = RlsClient::connect(addr, &Dn::anonymous()).unwrap();
        for t in 0..4 {
            c.create_mapping(&format!("lfn://bulkseed/{t}"), "pfn://seed")
                .unwrap();
        }
    }
    std::thread::scope(|s| {
        for t in 0..4 {
            s.spawn(move || {
                let mut c = RlsClient::connect(addr, &Dn::anonymous()).unwrap();
                let m = |l: String, p: &str| Mapping::new(l, p).unwrap();
                for round in 0..20 {
                    // Slots: 0 fresh, 1 duplicate of the seed (MappingExists),
                    // 2 fresh, 3 within-batch duplicate of slot 2.
                    let batch = vec![
                        m(format!("lfn://bulkchaos/{t}/{round}/a"), "pfn://1"),
                        m(format!("lfn://bulkseed/{t}"), "pfn://dup"),
                        m(format!("lfn://bulkchaos/{t}/{round}/b"), "pfn://1"),
                        m(format!("lfn://bulkchaos/{t}/{round}/b"), "pfn://2"),
                    ];
                    let failures = c.bulk_create(batch).unwrap();
                    let slots: Vec<u32> = failures.iter().map(|(i, _)| *i).collect();
                    assert_eq!(slots, vec![1, 3], "round {round} writer {t}");
                    for (_, e) in &failures {
                        assert_eq!(e.code(), ErrorCode::MappingExists);
                    }
                    // Deletes: slots 0/1 succeed, 2 targets a ghost mapping.
                    let dels = vec![
                        m(format!("lfn://bulkchaos/{t}/{round}/a"), "pfn://1"),
                        m(format!("lfn://bulkchaos/{t}/{round}/b"), "pfn://1"),
                        m(format!("lfn://bulkchaos/{t}/{round}/ghost"), "pfn://1"),
                    ];
                    let failures = c.bulk_delete(dels).unwrap();
                    assert_eq!(failures.len(), 1, "round {round} writer {t}");
                    assert_eq!(failures[0].0, 2);
                    assert_eq!(failures[0].1.code(), ErrorCode::LogicalNameNotFound);
                }
            });
        }
    });
    // Every fresh mapping was deleted again; only the seeds survive, and
    // the interleaved failures corrupted nothing.
    let mut c = dep.lrc_client(0).unwrap();
    let stats = c.stats().unwrap();
    assert_eq!(stats.lrc_lfn_count, 4);
    assert_eq!(stats.lrc_mapping_count, 4);
    // Every batch had at least one success, so every batch group-committed:
    // 4 writers x 20 rounds x 2 batches, visible on the operator surface.
    let group_commits = stats
        .counters
        .iter()
        .find(|(n, _)| n == "lrc.engine.group_commits")
        .expect("group_commits engine counter")
        .1;
    assert_eq!(group_commits, 4 * 20 * 2);
}
