//! Criterion micro-benches: storage-engine operation costs per backend
//! profile, including the dead-tuple degradation ablation behind Fig. 8.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use rls_storage::{BackendProfile, LrcDatabase};
use rls_types::Mapping;

fn preloaded(profile: BackendProfile, n: u64) -> LrcDatabase {
    let mut db = LrcDatabase::in_memory(profile);
    for i in 0..n {
        db.create_mapping(
            &Mapping::new(format!("lfn://s/{i:09}"), format!("pfn://s/{i:09}")).unwrap(),
        )
        .unwrap();
    }
    db
}

fn bench_point_ops(c: &mut Criterion) {
    let mut g = c.benchmark_group("storage/point_ops");
    for (label, profile) in [
        ("mysql", BackendProfile::mysql_buffered()),
        ("postgres", BackendProfile::postgres_buffered()),
    ] {
        let db = preloaded(profile, 100_000);
        g.bench_with_input(BenchmarkId::new("query", label), &db, |b, db| {
            let mut i = 0u64;
            b.iter(|| {
                i = (i + 1) % 100_000;
                db.query_lfn(&format!("lfn://s/{i:09}")).unwrap()
            });
        });
        let mut db = preloaded(profile, 10_000);
        g.bench_function(BenchmarkId::new("add_delete_pair", label), |b| {
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                let m =
                    Mapping::new(format!("lfn://t/{i}"), format!("pfn://t/{i}")).unwrap();
                db.create_mapping(&m).unwrap();
                db.delete_mapping(&m).unwrap();
            });
        });
    }
    g.finish();
}

/// The Fig. 8 mechanism in isolation: probe cost over keys that carry
/// accumulated dead index entries, before vs after VACUUM.
///
/// Measured with *read-only* probes (a point query of a deleted hot key —
/// the lookup must walk the key's dead postings before concluding it is
/// absent) so the benchmark body does not itself grow the dead count
/// between iterations.
fn bench_dead_tuple_degradation(c: &mut Criterion) {
    let mut g = c.benchmark_group("storage/dead_tuples");
    // Build up dead versions of the same keys (N add+delete rounds).
    let build = |rounds: u64| {
        let mut db = preloaded(BackendProfile::postgres_buffered(), 11_000);
        for _ in 0..rounds {
            for i in 0..1_000u64 {
                let m =
                    Mapping::new(format!("lfn://hot/{i}"), format!("pfn://hot/{i}")).unwrap();
                db.create_mapping(&m).unwrap();
                db.delete_mapping(&m).unwrap();
            }
        }
        db
    };
    for rounds in [0u64, 5, 10] {
        let db = build(rounds);
        g.bench_function(BenchmarkId::new("bloated_probe", rounds), |b| {
            let mut i = 0u64;
            b.iter(|| {
                i = (i + 1) % 1_000;
                // Deleted key: the probe walks `rounds` dead postings.
                db.query_lfn(&format!("lfn://hot/{i}")).unwrap_err()
            });
        });
        let mut db = build(rounds);
        db.vacuum().unwrap();
        g.bench_function(BenchmarkId::new("vacuumed_probe", rounds), |b| {
            let mut i = 0u64;
            b.iter(|| {
                i = (i + 1) % 1_000;
                db.query_lfn(&format!("lfn://hot/{i}")).unwrap_err()
            });
        });
    }
    g.finish();
}

fn bench_wildcard(c: &mut Criterion) {
    let db = preloaded(BackendProfile::mysql_buffered(), 100_000);
    let g9 = rls_types::Glob::new("lfn://s/00000*").unwrap(); // ~100 hits
    c.bench_function("storage/wildcard_prefix_100k", |b| {
        b.iter(|| db.wildcard_query_lfn(&g9, 10_000).unwrap());
    });
    let g_all = rls_types::Glob::new("*9999").unwrap(); // no usable prefix
    c.bench_function("storage/wildcard_fullscan_100k", |b| {
        b.iter(|| db.wildcard_query_lfn(&g_all, 10_000).unwrap());
    });
}

criterion_group!(
    benches,
    bench_point_ops,
    bench_dead_tuple_degradation,
    bench_wildcard
);
criterion_main!(benches);
