/root/repo/target/debug/deps/fig06_lrc_multiclient-5426563af0af5774.d: crates/bench/benches/fig06_lrc_multiclient.rs

/root/repo/target/debug/deps/libfig06_lrc_multiclient-5426563af0af5774.rmeta: crates/bench/benches/fig06_lrc_multiclient.rs

crates/bench/benches/fig06_lrc_multiclient.rs:
