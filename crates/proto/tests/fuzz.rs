//! Protocol fuzzing: decoders must never panic and must reject trailing
//! garbage; encoders must round-trip arbitrary (valid) values.

use proptest::prelude::*;

use rls_proto::{Request, Response, TRACE_ENVELOPE_OPCODE};
use rls_types::Mapping;

proptest! {
    /// Arbitrary bytes never panic either decoder.
    #[test]
    fn decode_arbitrary_bytes_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = Request::decode(&bytes);
        let _ = Response::decode(&bytes);
    }

    /// Valid encoded requests survive arbitrary single-byte corruption
    /// without panicking (they may decode to a different valid message or
    /// an error; both are fine — no UB, no panic).
    #[test]
    fn corrupted_frames_never_panic(
        lfn in "[a-z]{1,20}",
        pfn in "[a-z]{1,20}",
        flip_at in any::<prop::sample::Index>(),
        flip_bits in 1u8..,
    ) {
        let req = Request::Create(Mapping::new(format!("lfn://{lfn}"), format!("pfn://{pfn}")).unwrap());
        let mut bytes = req.encode().into_bytes().to_vec();
        let i = flip_at.index(bytes.len());
        bytes[i] ^= flip_bits;
        let _ = Request::decode(&bytes);
    }

    /// Generated mapping requests round-trip exactly.
    #[test]
    fn mapping_requests_round_trip(
        lfns in prop::collection::vec("[a-zA-Z0-9/:._-]{1,60}", 1..50),
    ) {
        let mappings: Vec<Mapping> = lfns
            .iter()
            .map(|l| Mapping::new(format!("lfn://{l}"), format!("pfn://{l}")).unwrap())
            .collect();
        for req in [
            Request::BulkCreate(mappings.clone()),
            Request::BulkAdd(mappings.clone()),
            Request::BulkDelete(mappings.clone()),
        ] {
            let bytes = req.encode().into_bytes();
            prop_assert_eq!(Request::decode(&bytes).unwrap(), req);
        }
    }

    /// Soft-state updates round-trip with arbitrary name lists.
    #[test]
    fn softstate_round_trip(
        lrc in "[a-z0-9.:-]{1,40}",
        added in prop::collection::vec("[a-z0-9/]{1,40}", 0..100),
        removed in prop::collection::vec("[a-z0-9/]{1,40}", 0..100),
        update_id in any::<u64>(),
        seq in any::<u32>(),
        last in any::<bool>(),
    ) {
        let delta = Request::SoftStateDelta {
            lrc: lrc.clone(),
            added: added.clone(),
            removed,
        };
        let bytes = delta.encode().into_bytes();
        prop_assert_eq!(Request::decode(&bytes).unwrap(), delta);

        let full = Request::SoftStateFull {
            lrc,
            update_id,
            seq,
            last,
            lfns: added,
        };
        let bytes = full.encode().into_bytes();
        prop_assert_eq!(Request::decode(&bytes).unwrap(), full);
    }

    /// Responses carrying arbitrary strings round-trip.
    #[test]
    fn string_responses_round_trip(names in prop::collection::vec(".{0,80}", 0..50)) {
        for resp in [
            Response::Targets(names.clone()),
            Response::Logicals(names.clone()),
            Response::Names(names.clone()),
        ] {
            let bytes = resp.encode().into_bytes();
            prop_assert_eq!(Response::decode(&bytes).unwrap(), resp);
        }
    }

    /// Every truncation of a valid frame is rejected cleanly.
    #[test]
    fn truncations_rejected(cut in 0usize..100) {
        let req = Request::SoftStateDelta {
            lrc: "lrc-x".into(),
            added: vec!["lfn://a".into(), "lfn://b".into()],
            removed: vec!["lfn://c".into()],
        };
        let bytes = req.encode().into_bytes();
        if cut < bytes.len() {
            prop_assert!(Request::decode(&bytes[..cut]).is_err());
        }
    }

    /// Trace-envelope round-trip: arbitrary nonzero ID lists survive the
    /// 0xFFFE prefix exactly, and every proper prefix of the traced frame
    /// is an error — never a panic, never a silent partial decode.
    #[test]
    fn trace_envelope_round_trip_and_truncations(
        ids in prop::collection::vec(1u64.., 1..20),
        lfn in "[a-z0-9/]{1,40}",
        cut in any::<prop::sample::Index>(),
    ) {
        let req = Request::QueryLfn(format!("lfn://{lfn}"));
        let bytes = req.encode_traced(&ids).into_bytes();
        let (got_ids, got) = Request::decode_traced(&bytes).unwrap();
        prop_assert_eq!(&got_ids, &ids);
        prop_assert_eq!(got, req);
        let cut = cut.index(bytes.len());
        prop_assert!(Request::decode_traced(&bytes[..cut]).is_err());
    }

    /// Zero IDs never produce an envelope: an all-zero (or empty) list
    /// encodes as a plain legacy frame and decodes back to no IDs.
    #[test]
    fn zero_trace_ids_are_stripped(zeros in 0usize..5) {
        let req = Request::Ping;
        let bytes = req.encode_traced(&vec![0u64; zeros]).into_bytes();
        let (got_ids, got) = Request::decode_traced(&bytes).unwrap();
        prop_assert!(got_ids.is_empty());
        prop_assert_eq!(got, req);
    }

    /// Arbitrary garbage after a well-formed trace envelope errors or
    /// decodes, but never panics — and an envelope whose declared ID count
    /// exceeds the frame is rejected up front.
    #[test]
    fn garbage_after_envelope_never_panics(
        ids in prop::collection::vec(1u64.., 1..8),
        junk in prop::collection::vec(any::<u8>(), 0..128),
        declared in any::<u32>(),
    ) {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&TRACE_ENVELOPE_OPCODE.to_le_bytes());
        bytes.extend_from_slice(&(ids.len() as u32).to_le_bytes());
        for id in &ids {
            bytes.extend_from_slice(&id.to_le_bytes());
        }
        bytes.extend_from_slice(&junk);
        let _ = Request::decode_traced(&bytes);

        // Oversized declared count: must error, not allocate or panic.
        let mut lying = Vec::new();
        lying.extend_from_slice(&TRACE_ENVELOPE_OPCODE.to_le_bytes());
        lying.extend_from_slice(&declared.to_le_bytes());
        lying.extend_from_slice(&junk);
        if (declared as usize).saturating_mul(8) > junk.len() {
            prop_assert!(Request::decode_traced(&lying).is_err());
        }
    }
}
