//! A small, self-contained pattern engine.
//!
//! The original RLS uses POSIX `regex(3)` in two places — access-control
//! list entries (matched against distinguished names / local usernames) and
//! namespace-partitioning rules (matched against logical names) — and a
//! simpler wildcard syntax (`*`, `?`) for client wildcard queries.
//!
//! We implement both from scratch:
//!
//! * [`Regex`]: a Thompson-NFA (Pike VM) engine over a practical regex
//!   subset: literals, `.`, character classes `[a-z]` / `[^...]`,
//!   repetition `*` `+` `?`, alternation `|`, grouping `(...)`, anchors
//!   `^` `$`, and `\`-escapes. The Pike VM guarantees linear-time matching
//!   — no catastrophic backtracking, which matters because ACL patterns are
//!   evaluated on the request hot path.
//! * [`Glob`]: shell-style wildcard matching (`*`, `?`, `[...]`) with an
//!   iterative two-pointer algorithm, used to translate the SQL `LIKE`-style
//!   wildcard queries of the paper.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::error::{ErrorCode, RlsError, RlsResult};

// ---------------------------------------------------------------------------
// Regex AST + parser
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Ast {
    Empty,
    Literal(char),
    AnyChar,
    Class(CharClass),
    Concat(Vec<Ast>),
    Alternate(Vec<Ast>),
    Star(Box<Ast>),
    Plus(Box<Ast>),
    Question(Box<Ast>),
    StartAnchor,
    EndAnchor,
}

/// A character class: set of ranges, possibly negated.
#[derive(Debug, Clone, PartialEq, Default)]
struct CharClass {
    negated: bool,
    ranges: Vec<(char, char)>,
}

impl CharClass {
    fn contains(&self, c: char) -> bool {
        let inside = self.ranges.iter().any(|&(lo, hi)| lo <= c && c <= hi);
        inside != self.negated
    }
}

struct Parser<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    pattern: &'a str,
    depth: usize,
}

const MAX_GROUP_DEPTH: usize = 64;

impl<'a> Parser<'a> {
    fn new(pattern: &'a str) -> Self {
        Self {
            chars: pattern.chars().peekable(),
            pattern,
            depth: 0,
        }
    }

    fn err(&self, msg: &str) -> RlsError {
        RlsError::new(
            ErrorCode::InvalidPattern,
            format!("invalid pattern {:?}: {msg}", self.pattern),
        )
    }

    /// alternation := concat ('|' concat)*
    fn parse_alternate(&mut self) -> RlsResult<Ast> {
        let mut branches = vec![self.parse_concat()?];
        while self.chars.peek() == Some(&'|') {
            self.chars.next();
            branches.push(self.parse_concat()?);
        }
        Ok(if branches.len() == 1 {
            branches.pop().expect("one branch")
        } else {
            Ast::Alternate(branches)
        })
    }

    /// concat := repeat*
    fn parse_concat(&mut self) -> RlsResult<Ast> {
        let mut parts = Vec::new();
        while let Some(&c) = self.chars.peek() {
            if c == '|' || c == ')' {
                break;
            }
            parts.push(self.parse_repeat()?);
        }
        Ok(match parts.len() {
            0 => Ast::Empty,
            1 => parts.pop().expect("one part"),
            _ => Ast::Concat(parts),
        })
    }

    /// repeat := atom ('*' | '+' | '?')*
    fn parse_repeat(&mut self) -> RlsResult<Ast> {
        let mut node = self.parse_atom()?;
        while let Some(&c) = self.chars.peek() {
            match c {
                '*' | '+' | '?' => {
                    if matches!(node, Ast::StartAnchor | Ast::EndAnchor) {
                        return Err(self.err("repetition applied to anchor"));
                    }
                    self.chars.next();
                    node = match c {
                        '*' => Ast::Star(Box::new(node)),
                        '+' => Ast::Plus(Box::new(node)),
                        _ => Ast::Question(Box::new(node)),
                    };
                }
                _ => break,
            }
        }
        Ok(node)
    }

    fn parse_atom(&mut self) -> RlsResult<Ast> {
        let c = self.chars.next().ok_or_else(|| self.err("unexpected end"))?;
        Ok(match c {
            '(' => {
                self.depth += 1;
                if self.depth > MAX_GROUP_DEPTH {
                    return Err(self.err("group nesting too deep"));
                }
                let inner = self.parse_alternate()?;
                if self.chars.next() != Some(')') {
                    return Err(self.err("unclosed group"));
                }
                self.depth -= 1;
                inner
            }
            '[' => Ast::Class(self.parse_class()?),
            '.' => Ast::AnyChar,
            '^' => Ast::StartAnchor,
            '$' => Ast::EndAnchor,
            '*' | '+' | '?' => return Err(self.err("repetition with nothing to repeat")),
            ')' => return Err(self.err("unmatched ')'")),
            '\\' => {
                let e = self
                    .chars
                    .next()
                    .ok_or_else(|| self.err("trailing backslash"))?;
                match e {
                    'n' => Ast::Literal('\n'),
                    't' => Ast::Literal('\t'),
                    'r' => Ast::Literal('\r'),
                    'd' => Ast::Class(CharClass {
                        negated: false,
                        ranges: vec![('0', '9')],
                    }),
                    'w' => Ast::Class(CharClass {
                        negated: false,
                        ranges: vec![('0', '9'), ('a', 'z'), ('A', 'Z'), ('_', '_')],
                    }),
                    's' => Ast::Class(CharClass {
                        negated: false,
                        ranges: vec![(' ', ' '), ('\t', '\t'), ('\n', '\n'), ('\r', '\r')],
                    }),
                    other => Ast::Literal(other),
                }
            }
            other => Ast::Literal(other),
        })
    }

    fn parse_class(&mut self) -> RlsResult<CharClass> {
        let mut class = CharClass::default();
        if self.chars.peek() == Some(&'^') {
            self.chars.next();
            class.negated = true;
        }
        // A ']' immediately after '[' (or '[^') is a literal, per POSIX.
        let mut first = true;
        loop {
            let c = match self.chars.next() {
                Some(c) => c,
                None => return Err(self.err("unclosed character class")),
            };
            if c == ']' && !first {
                break;
            }
            first = false;
            let lo = if c == '\\' {
                self.chars
                    .next()
                    .ok_or_else(|| self.err("trailing backslash in class"))?
            } else {
                c
            };
            // Range `lo-hi` only when '-' is followed by a non-']' char.
            if self.chars.peek() == Some(&'-') {
                let mut lookahead = self.chars.clone();
                lookahead.next(); // consume '-'
                match lookahead.peek() {
                    Some(&']') | None => {
                        class.ranges.push((lo, lo));
                    }
                    Some(_) => {
                        self.chars.next(); // '-'
                        let hi = self.chars.next().expect("peeked");
                        let hi = if hi == '\\' {
                            self.chars
                                .next()
                                .ok_or_else(|| self.err("trailing backslash in class"))?
                        } else {
                            hi
                        };
                        if hi < lo {
                            return Err(self.err("inverted range in character class"));
                        }
                        class.ranges.push((lo, hi));
                    }
                }
            } else {
                class.ranges.push((lo, lo));
            }
        }
        if class.ranges.is_empty() {
            return Err(self.err("empty character class"));
        }
        Ok(class)
    }
}

// ---------------------------------------------------------------------------
// Compilation to NFA instructions
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Inst {
    /// Match one char satisfying the predicate, then advance to next inst.
    Char(char),
    Any,
    Class(CharClass),
    /// Unconditional jump.
    Jmp(usize),
    /// Fork execution to both targets.
    Split(usize, usize),
    /// Match only at the start of the haystack.
    AssertStart,
    /// Match only at the end of the haystack.
    AssertEnd,
    /// Successful match.
    Match,
}

fn compile(ast: &Ast, prog: &mut Vec<Inst>) {
    match ast {
        Ast::Empty => {}
        Ast::Literal(c) => prog.push(Inst::Char(*c)),
        Ast::AnyChar => prog.push(Inst::Any),
        Ast::Class(c) => prog.push(Inst::Class(c.clone())),
        Ast::StartAnchor => prog.push(Inst::AssertStart),
        Ast::EndAnchor => prog.push(Inst::AssertEnd),
        Ast::Concat(parts) => {
            for p in parts {
                compile(p, prog);
            }
        }
        Ast::Alternate(branches) => {
            // split b1, split b2, ... chained; each branch jumps to the end.
            let mut jmp_slots = Vec::new();
            let n = branches.len();
            for (i, b) in branches.iter().enumerate() {
                if i + 1 < n {
                    let split_at = prog.len();
                    prog.push(Inst::Split(0, 0)); // patched below
                    compile(b, prog);
                    let jmp_at = prog.len();
                    prog.push(Inst::Jmp(0)); // patched below
                    jmp_slots.push(jmp_at);
                    let next_branch = prog.len();
                    if let Inst::Split(a, c) = &mut prog[split_at] {
                        *a = split_at + 1;
                        *c = next_branch;
                    }
                } else {
                    compile(b, prog);
                }
            }
            let end = prog.len();
            for slot in jmp_slots {
                if let Inst::Jmp(t) = &mut prog[slot] {
                    *t = end;
                }
            }
        }
        Ast::Star(inner) => {
            let split_at = prog.len();
            prog.push(Inst::Split(0, 0));
            compile(inner, prog);
            prog.push(Inst::Jmp(split_at));
            let end = prog.len();
            if let Inst::Split(a, b) = &mut prog[split_at] {
                *a = split_at + 1;
                *b = end;
            }
        }
        Ast::Plus(inner) => {
            let start = prog.len();
            compile(inner, prog);
            let split_at = prog.len();
            prog.push(Inst::Split(start, 0));
            let end = prog.len();
            if let Inst::Split(_, b) = &mut prog[split_at] {
                *b = end;
            }
        }
        Ast::Question(inner) => {
            let split_at = prog.len();
            prog.push(Inst::Split(0, 0));
            compile(inner, prog);
            let end = prog.len();
            if let Inst::Split(a, b) = &mut prog[split_at] {
                *a = split_at + 1;
                *b = end;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Pike VM execution
// ---------------------------------------------------------------------------

/// A compiled regular expression (Thompson NFA, linear-time matching).
#[derive(Debug, Clone)]
pub struct Regex {
    pattern: String,
    prog: Vec<Inst>,
}

impl Regex {
    /// Compiles a pattern.
    ///
    /// # Errors
    /// Returns [`ErrorCode::InvalidPattern`] on syntax errors.
    pub fn new(pattern: &str) -> RlsResult<Self> {
        let mut parser = Parser::new(pattern);
        let ast = parser.parse_alternate()?;
        if parser.chars.next().is_some() {
            return Err(parser.err("unmatched ')'"));
        }
        let mut prog = Vec::new();
        compile(&ast, &mut prog);
        prog.push(Inst::Match);
        Ok(Self {
            pattern: pattern.to_owned(),
            prog,
        })
    }

    /// The source pattern.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// True if the pattern matches anywhere in `text` (POSIX `regexec`
    /// search semantics — anchor with `^`/`$` for full matches).
    pub fn is_match(&self, text: &str) -> bool {
        self.search(text)
    }

    /// True if the pattern matches the *entire* `text`, regardless of
    /// anchors. This is the semantics ACL entries use: an entry `.*ISI.*`
    /// and an entry `^.*ISI.*$` behave identically.
    pub fn is_full_match(&self, text: &str) -> bool {
        self.run(text, true)
    }

    fn search(&self, text: &str) -> bool {
        self.run(text, false)
    }

    /// Pike VM: breadth-first simulation over the instruction list.
    fn run(&self, text: &str, full: bool) -> bool {
        let chars: Vec<char> = text.chars().collect();
        let n = self.prog.len();
        let mut clist: Vec<usize> = Vec::with_capacity(n);
        let mut nlist: Vec<usize> = Vec::with_capacity(n);
        let mut on_clist = vec![false; n];
        let mut on_nlist = vec![false; n];

        // addthread: follow epsilon transitions eagerly.
        fn add(
            prog: &[Inst],
            list: &mut Vec<usize>,
            on_list: &mut [bool],
            pc: usize,
            at_start: bool,
            at_end: bool,
        ) {
            if on_list[pc] {
                return;
            }
            on_list[pc] = true;
            match &prog[pc] {
                Inst::Jmp(t) => add(prog, list, on_list, *t, at_start, at_end),
                Inst::Split(a, b) => {
                    add(prog, list, on_list, *a, at_start, at_end);
                    add(prog, list, on_list, *b, at_start, at_end);
                }
                Inst::AssertStart => {
                    if at_start {
                        add(prog, list, on_list, pc + 1, at_start, at_end);
                    }
                }
                Inst::AssertEnd => {
                    if at_end {
                        add(prog, list, on_list, pc + 1, at_start, at_end);
                    }
                }
                _ => list.push(pc),
            }
        }

        let len = chars.len();
        for i in 0..=len {
            let at_start = i == 0;
            let at_end = i == len;
            // Unanchored search may start a new thread at every position;
            // full match may only start at position 0.
            if at_start || !full {
                add(&self.prog, &mut clist, &mut on_clist, 0, at_start, at_end);
            }
            let c = chars.get(i).copied();
            for &pc in clist.iter() {
                match &self.prog[pc] {
                    Inst::Match => {
                        if !full || at_end {
                            return true;
                        }
                    }
                    Inst::Char(want) => {
                        if c == Some(*want) {
                            add(
                                &self.prog,
                                &mut nlist,
                                &mut on_nlist,
                                pc + 1,
                                false,
                                i + 1 == len,
                            );
                        }
                    }
                    Inst::Any => {
                        if c.is_some() {
                            add(
                                &self.prog,
                                &mut nlist,
                                &mut on_nlist,
                                pc + 1,
                                false,
                                i + 1 == len,
                            );
                        }
                    }
                    Inst::Class(class) => {
                        if let Some(ch) = c {
                            if class.contains(ch) {
                                add(
                                    &self.prog,
                                    &mut nlist,
                                    &mut on_nlist,
                                    pc + 1,
                                    false,
                                    i + 1 == len,
                                );
                            }
                        }
                    }
                    // Epsilon instructions were resolved inside `add`.
                    Inst::Jmp(_) | Inst::Split(_, _) | Inst::AssertStart | Inst::AssertEnd => {}
                }
            }
            std::mem::swap(&mut clist, &mut nlist);
            std::mem::swap(&mut on_clist, &mut on_nlist);
            nlist.clear();
            on_nlist.iter_mut().for_each(|b| *b = false);
        }
        false
    }
}

impl fmt::Display for Regex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "/{}/", self.pattern)
    }
}

impl Serialize for Regex {
    fn serialize<S: serde::Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_str(&self.pattern)
    }
}

impl<'de> Deserialize<'de> for Regex {
    fn deserialize<D: serde::Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let s = String::deserialize(d)?;
        Regex::new(&s).map_err(serde::de::Error::custom)
    }
}

// ---------------------------------------------------------------------------
// Glob
// ---------------------------------------------------------------------------

/// A shell-style wildcard pattern: `*` (any run), `?` (any one char),
/// `[...]` (character class, `[^...]` negated).
///
/// Used for the LRC/RLI *wildcard query* operations of the paper's Table 1.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Glob {
    pattern: String,
}

impl Glob {
    /// Compiles (validates) a glob pattern.
    pub fn new(pattern: impl Into<String>) -> RlsResult<Self> {
        let pattern = pattern.into();
        // Validate class syntax up front so matching can't fail later.
        let mut chars = pattern.chars();
        while let Some(c) = chars.next() {
            if c == '[' {
                let mut closed = false;
                let mut first = true;
                let mut it = chars.clone();
                if it.clone().next() == Some('^') {
                    it.next();
                }
                while let Some(k) = it.next() {
                    if k == ']' && !first {
                        closed = true;
                        break;
                    }
                    first = false;
                    if k == '\\' && it.next().is_none() {
                        break;
                    }
                }
                if !closed {
                    return Err(RlsError::new(
                        ErrorCode::InvalidPattern,
                        format!("unclosed class in glob {pattern:?}"),
                    ));
                }
            } else if c == '\\' && chars.next().is_none() {
                return Err(RlsError::new(
                    ErrorCode::InvalidPattern,
                    format!("trailing backslash in glob {pattern:?}"),
                ));
            }
        }
        Ok(Self { pattern })
    }

    /// The source pattern.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// True if this pattern contains any wildcard metacharacters; a pattern
    /// without them is an exact-name query and can use a point lookup.
    pub fn is_literal(&self) -> bool {
        !self.pattern.contains(['*', '?', '[', '\\'])
    }

    /// Matches the whole `text` against the pattern (glob semantics are
    /// always full-string, like SQL `LIKE`).
    pub fn matches(&self, text: &str) -> bool {
        let p: Vec<char> = self.pattern.chars().collect();
        let t: Vec<char> = text.chars().collect();
        Self::match_inner(&p, &t)
    }

    /// The leading literal prefix of the pattern (up to the first
    /// metacharacter). Lets the storage layer seek an ordered index before
    /// scanning — e.g. `lfn://run7/*` scans only keys with that prefix.
    pub fn literal_prefix(&self) -> &str {
        match self.pattern.find(['*', '?', '[', '\\']) {
            Some(i) => &self.pattern[..i],
            None => &self.pattern,
        }
    }

    /// Iterative wildcard match with single-star backtracking: O(|p|·|t|)
    /// worst case, O(|t|) typical.
    fn match_inner(p: &[char], t: &[char]) -> bool {
        let (mut pi, mut ti) = (0usize, 0usize);
        let mut star: Option<(usize, usize)> = None; // (pattern idx after '*', text idx)
        while ti < t.len() {
            if pi < p.len() {
                match p[pi] {
                    '*' => {
                        star = Some((pi + 1, ti));
                        pi += 1;
                        continue;
                    }
                    '?' => {
                        pi += 1;
                        ti += 1;
                        continue;
                    }
                    '[' => {
                        if let Some((ok, next_pi)) = Self::match_class(p, pi, t[ti]) {
                            if ok {
                                pi = next_pi;
                                ti += 1;
                                continue;
                            }
                        }
                    }
                    '\\' => {
                        if pi + 1 < p.len() && p[pi + 1] == t[ti] {
                            pi += 2;
                            ti += 1;
                            continue;
                        }
                    }
                    c => {
                        if c == t[ti] {
                            pi += 1;
                            ti += 1;
                            continue;
                        }
                    }
                }
            }
            // Mismatch: backtrack to the last '*', consuming one more char.
            match star {
                Some((sp, st)) => {
                    pi = sp;
                    ti = st + 1;
                    star = Some((sp, st + 1));
                }
                None => return false,
            }
        }
        // Remaining pattern must be all '*'.
        while pi < p.len() && p[pi] == '*' {
            pi += 1;
        }
        pi == p.len()
    }

    /// Evaluates the class starting at `p[start] == '['` against `c`.
    /// Returns `(matched, index after class)`.
    fn match_class(p: &[char], start: usize, c: char) -> Option<(bool, usize)> {
        let mut i = start + 1;
        let mut negated = false;
        if p.get(i) == Some(&'^') {
            negated = true;
            i += 1;
        }
        let mut matched = false;
        let mut first = true;
        while i < p.len() {
            if p[i] == ']' && !first {
                return Some((matched != negated, i + 1));
            }
            first = false;
            let lo = if p[i] == '\\' {
                i += 1;
                *p.get(i)?
            } else {
                p[i]
            };
            if p.get(i + 1) == Some(&'-') && p.get(i + 2).is_some_and(|&k| k != ']') {
                let hi = p[i + 2];
                if lo <= c && c <= hi {
                    matched = true;
                }
                i += 3;
            } else {
                if c == lo {
                    matched = true;
                }
                i += 1;
            }
        }
        None // unclosed; prevented by `new`
    }
}

impl fmt::Display for Glob {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.pattern)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn re(p: &str) -> Regex {
        Regex::new(p).unwrap()
    }
    fn glob(p: &str) -> Glob {
        Glob::new(p).unwrap()
    }

    // ---- regex ----

    #[test]
    fn regex_literals() {
        assert!(re("abc").is_match("xxabcxx"));
        assert!(!re("abc").is_match("ab"));
        assert!(re("abc").is_full_match("abc"));
        assert!(!re("abc").is_full_match("xabc"));
    }

    #[test]
    fn regex_anchors() {
        assert!(re("^abc").is_match("abcdef"));
        assert!(!re("^abc").is_match("xabc"));
        assert!(re("def$").is_match("abcdef"));
        assert!(!re("def$").is_match("defabc"));
        assert!(re("^$").is_match(""));
        assert!(!re("^$").is_match("a"));
    }

    #[test]
    fn regex_repetition() {
        assert!(re("ab*c").is_full_match("ac"));
        assert!(re("ab*c").is_full_match("abbbc"));
        assert!(re("ab+c").is_full_match("abc"));
        assert!(!re("ab+c").is_full_match("ac"));
        assert!(re("ab?c").is_full_match("ac"));
        assert!(re("ab?c").is_full_match("abc"));
        assert!(!re("ab?c").is_full_match("abbc"));
    }

    #[test]
    fn regex_alternation_and_groups() {
        assert!(re("cat|dog").is_full_match("cat"));
        assert!(re("cat|dog").is_full_match("dog"));
        assert!(!re("cat|dog").is_full_match("cow"));
        assert!(re("a(b|c)d").is_full_match("abd"));
        assert!(re("a(b|c)d").is_full_match("acd"));
        assert!(re("(ab)+").is_full_match("ababab"));
        assert!(!re("(ab)+").is_full_match("aba"));
        assert!(re("a|b|c").is_full_match("c"));
    }

    #[test]
    fn regex_classes() {
        assert!(re("[a-z]+").is_full_match("hello"));
        assert!(!re("[a-z]+").is_full_match("Hello"));
        assert!(re("[^0-9]+").is_full_match("abc"));
        assert!(!re("[^0-9]+").is_full_match("a1c"));
        assert!(re("[-az]").is_full_match("-"));
        assert!(re("[a-]").is_full_match("-"));
        assert!(re("[]a]").is_full_match("]"));
        assert!(re(r"\d+").is_full_match("12345"));
        assert!(re(r"\w+").is_full_match("foo_bar9"));
        assert!(re(r"\s").is_full_match(" "));
    }

    #[test]
    fn regex_escapes() {
        assert!(re(r"a\.b").is_full_match("a.b"));
        assert!(!re(r"a\.b").is_full_match("axb"));
        assert!(re(r"a\\b").is_full_match("a\\b"));
        assert!(re(r"\(x\)").is_full_match("(x)"));
    }

    #[test]
    fn regex_dn_acl_patterns() {
        // Shapes from the paper: ACL entries are regexes over X.509 DNs.
        let acl = re("^/O=Grid/OU=ISI/CN=.*$");
        assert!(acl.is_match("/O=Grid/OU=ISI/CN=Ann Chervenak"));
        assert!(!acl.is_match("/O=Grid/OU=UCLA/CN=Someone"));
        let part = re("^lfn://ligo/(h1|l1)/.*");
        assert!(part.is_match("lfn://ligo/h1/frame-0001"));
        assert!(!part.is_match("lfn://ligo/v1/frame-0001"));
    }

    #[test]
    fn regex_errors() {
        for bad in ["a(", "a)", "*(a", "*a", "+", "a[", "a[z-a]", r"a\", "a[]"] {
            let e = Regex::new(bad).unwrap_err();
            assert_eq!(e.code(), ErrorCode::InvalidPattern, "pattern {bad:?}");
        }
    }

    #[test]
    fn regex_no_catastrophic_backtracking() {
        // (a*)*b against a^40: a backtracking engine would take ~2^40 steps.
        let r = re("(a*)*b");
        let hay = "a".repeat(40);
        let t0 = std::time::Instant::now();
        assert!(!r.is_match(&hay));
        assert!(t0.elapsed() < std::time::Duration::from_millis(500));
    }

    #[test]
    fn regex_empty_pattern_matches_everything() {
        assert!(re("").is_match(""));
        assert!(re("").is_match("anything"));
        assert!(re("").is_full_match(""));
        assert!(!re("").is_full_match("x"));
    }

    #[test]
    fn regex_unicode() {
        assert!(re("héllo").is_full_match("héllo"));
        assert!(re(".").is_full_match("é"));
        assert!(re("[α-ω]+").is_full_match("αβγ"));
    }

    // ---- glob ----

    #[test]
    fn glob_basics() {
        assert!(glob("*").matches(""));
        assert!(glob("*").matches("anything"));
        assert!(glob("a*c").matches("abc"));
        assert!(glob("a*c").matches("ac"));
        assert!(glob("a*c").matches("a-long-middle-c"));
        assert!(!glob("a*c").matches("acb"));
        assert!(glob("a?c").matches("abc"));
        assert!(!glob("a?c").matches("ac"));
    }

    #[test]
    fn glob_classes() {
        assert!(glob("file[0-9]").matches("file7"));
        assert!(!glob("file[0-9]").matches("fileA"));
        assert!(glob("file[^0-9]").matches("fileA"));
        assert!(glob("[]x]").matches("]"));
    }

    #[test]
    fn glob_multiple_stars() {
        assert!(glob("lfn://*/run*/file*").matches("lfn://ligo/run7/file0001"));
        assert!(!glob("lfn://*/run*/file*").matches("lfn://ligo/data/file0001"));
        assert!(glob("*a*a*a*").matches("xaxaxax"));
        assert!(!glob("*a*a*a*").matches("xaxax"));
    }

    #[test]
    fn glob_escape() {
        assert!(glob(r"a\*b").matches("a*b"));
        assert!(!glob(r"a\*b").matches("axb"));
    }

    #[test]
    fn glob_literal_detection_and_prefix() {
        assert!(glob("plain-name").is_literal());
        assert!(!glob("pre*").is_literal());
        assert_eq!(glob("lfn://x/*").literal_prefix(), "lfn://x/");
        assert_eq!(glob("exact").literal_prefix(), "exact");
        assert_eq!(glob("*suffix").literal_prefix(), "");
    }

    #[test]
    fn glob_errors() {
        assert!(Glob::new("a[").is_err());
        assert!(Glob::new("a\\").is_err());
        assert!(Glob::new("a[bc").is_err());
    }

    #[test]
    fn glob_trailing_star_runs() {
        assert!(glob("abc***").matches("abc"));
        assert!(glob("abc***").matches("abcdef"));
        assert!(!glob("abc***d").matches("abc"));
    }
}
