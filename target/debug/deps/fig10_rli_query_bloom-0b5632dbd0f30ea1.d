/root/repo/target/debug/deps/fig10_rli_query_bloom-0b5632dbd0f30ea1.d: crates/bench/benches/fig10_rli_query_bloom.rs Cargo.toml

/root/repo/target/debug/deps/libfig10_rli_query_bloom-0b5632dbd0f30ea1.rmeta: crates/bench/benches/fig10_rli_query_bloom.rs Cargo.toml

crates/bench/benches/fig10_rli_query_bloom.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
