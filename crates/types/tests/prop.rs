//! Property tests for the pattern engine: the glob matcher is cross-checked
//! against the regex engine through a glob→regex translation, and both are
//! exercised on arbitrary inputs without panicking.

use proptest::prelude::*;

use rls_types::{Glob, LogicalName, Regex, TargetName};

/// Translates a glob (over a restricted alphabet without classes/escapes)
/// into an anchored regex.
fn glob_to_regex(glob: &str) -> String {
    let mut out = String::from("^");
    for c in glob.chars() {
        match c {
            '*' => out.push_str(".*"),
            '?' => out.push('.'),
            // Escape regex metacharacters.
            '.' | '+' | '(' | ')' | '[' | ']' | '|' | '^' | '$' | '\\' => {
                out.push('\\');
                out.push(c);
            }
            c => out.push(c),
        }
    }
    out.push('$');
    out
}

proptest! {
    /// Glob and the equivalent regex agree on every input.
    #[test]
    fn glob_agrees_with_regex(
        pattern in "[a-c*?]{0,12}",
        input in "[a-c]{0,12}",
    ) {
        let glob = Glob::new(&pattern).unwrap();
        let regex = Regex::new(&glob_to_regex(&pattern)).unwrap();
        prop_assert_eq!(
            glob.matches(&input),
            regex.is_match(&input),
            "pattern={} input={}", pattern, input
        );
    }

    /// Arbitrary pattern strings either compile or error — never panic —
    /// and compiled patterns match arbitrary inputs without panicking.
    #[test]
    fn pattern_compilation_never_panics(
        pattern in ".{0,30}",
        input in ".{0,60}",
    ) {
        if let Ok(re) = Regex::new(&pattern) {
            let _ = re.is_match(&input);
            let _ = re.is_full_match(&input);
        }
        if let Ok(g) = Glob::new(&pattern) {
            let _ = g.matches(&input);
            let _ = g.literal_prefix();
        }
    }

    /// A literal (metacharacter-free) glob matches exactly itself.
    #[test]
    fn literal_glob_is_equality(s in "[a-zA-Z0-9/:._-]{1,30}", t in "[a-zA-Z0-9/:._-]{1,30}") {
        let g = Glob::new(&s).unwrap();
        prop_assert!(g.is_literal());
        prop_assert!(g.matches(&s));
        prop_assert_eq!(g.matches(&t), s == t);
    }

    /// literal_prefix really is a prefix of every match.
    #[test]
    fn literal_prefix_is_sound(
        prefix in "[a-z/]{0,10}",
        suffix in "[a-z]{0,10}",
    ) {
        let pattern = format!("{prefix}*");
        let g = Glob::new(&pattern).unwrap();
        prop_assert_eq!(g.literal_prefix(), prefix.as_str());
        let candidate = format!("{prefix}{suffix}");
        prop_assert!(g.matches(&candidate));
    }

    /// Name validation accepts exactly the legal space (printable, ≤250
    /// bytes) and its acceptance agrees between LFN and PFN types.
    #[test]
    fn name_validation_consistent(s in ".{0,300}") {
        let lfn = LogicalName::new(&s);
        let pfn = TargetName::new(&s);
        prop_assert_eq!(lfn.is_ok(), pfn.is_ok());
        let expect_ok = !s.is_empty() && s.len() <= 250 && !s.chars().any(|c| c.is_control());
        prop_assert_eq!(lfn.is_ok(), expect_ok);
    }

    /// Anchored repetition of alternating groups stays linear: a worst-case
    /// input of 200 chars must match (or fail) quickly and correctly.
    #[test]
    fn alternation_repetition_correct(n in 1usize..60) {
        let re = Regex::new("^(ab|ba)+$").unwrap();
        let good = "ab".repeat(n);
        prop_assert!(re.is_match(&good));
        let bad = format!("{}a", "ab".repeat(n));
        prop_assert!(!re.is_match(&bad));
    }
}
