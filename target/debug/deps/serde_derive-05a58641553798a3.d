/root/repo/target/debug/deps/serde_derive-05a58641553798a3.d: /tmp/vendor/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-05a58641553798a3.so: /tmp/vendor/serde_derive/src/lib.rs

/tmp/vendor/serde_derive/src/lib.rs:
