/root/repo/target/debug/deps/stress-5fdaecfc180d4a1a.d: crates/core/tests/stress.rs Cargo.toml

/root/repo/target/debug/deps/libstress-5fdaecfc180d4a1a.rmeta: crates/core/tests/stress.rs Cargo.toml

crates/core/tests/stress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
