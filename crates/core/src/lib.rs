//! # `rls-core`
//!
//! The Replica Location Service itself — the paper's primary contribution:
//!
//! * [`server`] — the common multi-threaded server, configurable as an LRC,
//!   an RLI, or both (§3.1);
//! * [`lrc`] / [`rli`] — the two roles' service layers over the storage
//!   engine (plus the RLI's in-memory Bloom store);
//! * [`shard`] — the LFN-hash-partitioned LRC catalog: N independent
//!   engines, each with its own lock, WAL, and group-commit queue, so
//!   writers on different shards never serialize;
//! * [`softstate`] — the soft-state update senders: uncompressed full,
//!   immediate/incremental, Bloom-compressed, and namespace-partitioned
//!   (§3.2–3.5);
//! * [`auth`] — gridmap + regex-ACL authorization (§3.1);
//! * [`client`] — the typed client library covering Table 1;
//! * [`hierarchy`] — RLI-to-RLI forwarding (§7 "hierarchy of RLI servers",
//!   this repo's implementation of the paper's future-work feature);
//! * [`membership`] — static membership configuration and reconciliation
//!   (framework element 5, §3.6);
//! * [`locator`] — the client-side recovery loop applications need against
//!   stale/false-positive RLI answers (§3.2);
//! * [`testkit`] — multi-server loopback deployments for tests, examples
//!   and benchmarks.

pub mod auth;
pub mod client;
pub mod config;
pub mod configfile;
pub mod dispatch;
pub mod hierarchy;
pub mod locator;
pub mod lrc;
pub mod membership;
pub mod report;
pub mod rli;
pub mod server;
pub mod shard;
pub mod softstate;
pub mod testkit;

pub use auth::{Authorizer, Identity};
pub use client::{RetryMeter, RlsClient};
pub use config::{AuthConfig, LrcConfig, RliConfig, ServerConfig, UpdateConfig, UpdateMode};
pub use dispatch::ServerState;
pub use locator::{Located, LrcDirectory, ReplicaLocator, StaticDirectory};
pub use lrc::LrcService;
pub use membership::{Member, MemberRole, MembershipConfig, UpdateEdge};
pub use report::{
    format_history_json, format_stats_json, format_stats_report, format_trace_report, render_top,
    TopOptions,
};
pub use rli::RliService;
pub use server::{Server, SERVER_VERSION};
pub use shard::ShardedCatalog;
pub use softstate::{UpdateKind, UpdateOutcome, Updater, FLAG_BLOOM};
pub use testkit::{TestDeployment, TestDeploymentBuilder};
