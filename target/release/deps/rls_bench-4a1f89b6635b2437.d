/root/repo/target/release/deps/rls_bench-4a1f89b6635b2437.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/librls_bench-4a1f89b6635b2437.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/librls_bench-4a1f89b6635b2437.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
