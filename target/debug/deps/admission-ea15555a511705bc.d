/root/repo/target/debug/deps/admission-ea15555a511705bc.d: crates/core/tests/admission.rs Cargo.toml

/root/repo/target/debug/deps/libadmission-ea15555a511705bc.rmeta: crates/core/tests/admission.rs Cargo.toml

crates/core/tests/admission.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
