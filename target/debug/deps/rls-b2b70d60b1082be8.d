/root/repo/target/debug/deps/rls-b2b70d60b1082be8.d: src/lib.rs

/root/repo/target/debug/deps/librls-b2b70d60b1082be8.rmeta: src/lib.rs

src/lib.rs:
