//! Pegasus-style workflow registration (§6 of the paper): "The Pegasus
//! system for planning and execution in Grids uses 6 LRCs and 4 RLIs to
//! register the locations of approximately 100,000 logical files" —
//! workflow planners that perform "many RLS query or registration
//! operations", which is what the bulk interface (§5.4) exists for.
//!
//! This example plays a workflow engine: it discovers input data through
//! the RLI tier, stages intermediate products with bulk registrations as
//! tasks complete on different sites, and bulk-queries outputs at the end.
//!
//! Run: `cargo run --example pegasus_workflow`

use rls::core::testkit::TestDeployment;
use rls::types::Mapping;

const TASKS: u64 = 40;
const OUTPUTS_PER_TASK: u64 = 25;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Pegasus-shaped deployment: 6 LRCs (compute/storage sites), 4 RLIs,
    // every LRC updating every RLI (immediate mode — planners want fresh
    // indexes).
    let dep = TestDeployment::builder()
        .lrcs(6)
        .rlis(4)
        .immediate(true)
        .build()?;

    // Stage 0: the input dataset already exists at site 0.
    let mut site0 = dep.lrc_client(0)?;
    let inputs: Vec<Mapping> = (0..TASKS)
        .map(|t| {
            Mapping::new(
                format!("lfn://pegasus/montage/input-{t:03}.fits"),
                format!("gsiftp://storage0.grid.org/raw/input-{t:03}.fits"),
            )
            .expect("valid names")
        })
        .collect();
    let failures = site0.bulk_create(inputs)?;
    assert!(failures.is_empty());
    for r in dep.flush_deltas() {
        r?;
    }
    println!("staged {TASKS} input files at site 0");

    // Stage 1: the planner locates inputs through any RLI.
    let mut rli = dep.rli_client(2)?;
    let results = rli.rli_bulk_query_lfn(
        (0..TASKS)
            .map(|t| format!("lfn://pegasus/montage/input-{t:03}.fits"))
            .collect(),
    )?;
    let located = results.iter().filter(|(_, r)| r.is_ok()).count();
    println!("planner located {located}/{TASKS} inputs via the RLI tier");
    assert_eq!(located as u64, TASKS);

    // Stage 2: tasks run round-robin across sites 1..6, each bulk-
    // registering its outputs at its local LRC as it finishes.
    let mut registered = 0u64;
    for t in 0..TASKS {
        let site = 1 + (t as usize % 5);
        let mut client = dep.lrc_client(site)?;
        let outputs: Vec<Mapping> = (0..OUTPUTS_PER_TASK)
            .map(|k| {
                Mapping::new(
                    format!("lfn://pegasus/montage/task-{t:03}/tile-{k:03}.fits"),
                    format!("gsiftp://storage{site}.grid.org/scratch/t{t:03}/tile-{k:03}.fits"),
                )
                .expect("valid names")
            })
            .collect();
        let failures = client.bulk_create(outputs)?;
        assert!(failures.is_empty());
        registered += OUTPUTS_PER_TASK;
    }
    println!("tasks bulk-registered {registered} intermediate products across 5 sites");

    // Immediate mode: deltas flow to all four RLIs (forced here; the
    // background thread does this on its 30 s cadence in production).
    for r in dep.flush_deltas() {
        r?;
    }

    // Stage 3: the planner verifies all outputs exist before the final
    // mosaic step, spreading bulk queries across RLIs.
    let mut missing = 0;
    for (i, chunk) in (0..TASKS).collect::<Vec<_>>().chunks(10).enumerate() {
        let mut rli = dep.rli_client(i % 4)?;
        let names: Vec<String> = chunk
            .iter()
            .flat_map(|t| {
                (0..OUTPUTS_PER_TASK)
                    .map(move |k| format!("lfn://pegasus/montage/task-{t:03}/tile-{k:03}.fits"))
            })
            .collect();
        let results = rli.rli_bulk_query_lfn(names)?;
        missing += results.iter().filter(|(_, r)| r.is_err()).count();
    }
    println!("planner verification: {missing} outputs missing");
    assert_eq!(missing, 0);

    // Stage 4: cleanup — a failed task's products are withdrawn with a
    // bulk delete, and the deltas propagate the removals.
    let mut site3 = dep.lrc_client(3)?;
    let doomed: Vec<Mapping> = (0..OUTPUTS_PER_TASK)
        .map(|k| {
            Mapping::new(
                format!("lfn://pegasus/montage/task-002/tile-{k:03}.fits"),
                format!("gsiftp://storage3.grid.org/scratch/t002/tile-{k:03}.fits"),
            )
            .expect("valid names")
        })
        .collect();
    let failures = site3.bulk_delete(doomed)?;
    assert!(failures.is_empty());
    for r in dep.flush_deltas() {
        r?;
    }
    let mut rli0 = dep.rli_client(0)?;
    assert!(rli0
        .rli_query_lfn("lfn://pegasus/montage/task-002/tile-000.fits")
        .is_err());
    println!("withdrew task-002's products; indexes already reflect the removal");
    Ok(())
}
