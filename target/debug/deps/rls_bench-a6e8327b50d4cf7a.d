/root/repo/target/debug/deps/rls_bench-a6e8327b50d4cf7a.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/librls_bench-a6e8327b50d4cf7a.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
