//! Hierarchical RLIs: RLI servers that update one another (§7 of the
//! paper, "the latest RLS version includes support for a hierarchy of RLI
//! servers that update one another" — future work at publication time,
//! implemented here).
//!
//! A child RLI forwards its knowledge to a parent RLI in two parts:
//!
//! 1. **Relational store**: the child summarizes the logical names in its
//!    relational store into a Bloom filter sent under *the child's own
//!    name*. A client querying the parent is pointed at the child RLI,
//!    queries it, and from there reaches the LRCs — target names in the
//!    RLS framework "may also be other logical names", which is exactly
//!    what makes this chaining legal.
//! 2. **Bloom store**: filters the child holds for individual LRCs are
//!    forwarded unchanged under their original LRC names, so the parent
//!    can point clients directly at the LRC (no extra hop, no information
//!    loss).

use std::sync::Arc;

use rls_bloom::{BloomFilter, BloomParams};
use rls_net::LinkProfile;
use rls_types::{Dn, RlsResult};

use crate::client::RlsClient;
use crate::rli::RliService;

/// Forwards one RLI's contents up to a parent RLI.
pub struct RliForwarder {
    /// The child RLI's advertised name.
    child_name: String,
    dn: Dn,
    rli: Arc<RliService>,
    link: LinkProfile,
    params: BloomParams,
}

impl std::fmt::Debug for RliForwarder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RliForwarder")
            .field("child_name", &self.child_name)
            .finish_non_exhaustive()
    }
}

impl RliForwarder {
    /// Creates a forwarder for `rli` advertising `child_name` upstream.
    pub fn new(child_name: String, dn: Dn, rli: Arc<RliService>, link: LinkProfile) -> Self {
        Self {
            child_name,
            dn,
            rli,
            link,
            params: BloomParams::PAPER,
        }
    }

    /// Builds the Bloom summary of the child's relational store. Shards
    /// are scanned one read lock at a time, so a long summary never
    /// blocks appliers on the other shards.
    pub fn relational_summary(&self) -> BloomFilter {
        let db = self.rli.db();
        let mut filter = BloomFilter::with_capacity(self.params, db.lfn_count().max(1024));
        db.for_each_lfn(|lfn| filter.insert(lfn));
        filter
    }

    /// Pushes one forwarding round to the parent at `parent_addr`.
    /// Returns the number of filters shipped.
    pub fn forward(&self, parent_addr: &str) -> RlsResult<u64> {
        let mut client = RlsClient::connect_shaped(parent_addr, &self.dn, self.link, None)?;
        let mut shipped = 0u64;
        // Part 1: relational store summarized under the child's name.
        let summary = self.relational_summary();
        if !summary.is_empty() {
            client.send_bloom(&self.child_name, &summary)?;
            shipped += 1;
        }
        // Part 2: per-LRC filters forwarded verbatim.
        for (lrc, filter) in self.rli.bloom_snapshot_list() {
            client.send_bloom(&lrc, &filter)?;
            shipped += 1;
        }
        Ok(shipped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RliConfig;
    use rls_types::Timestamp;

    #[test]
    fn relational_summary_covers_store() {
        let rli = Arc::new(RliService::new(RliConfig::default()).unwrap());
        rli.apply_full_chunk(
            "lrc-1",
            &["lfn://h/1".to_owned(), "lfn://h/2".to_owned()],
            Timestamp::from_unix_secs(1),
        )
        .unwrap();
        let fwd = RliForwarder::new(
            "child-rli".into(),
            Dn::anonymous(),
            Arc::clone(&rli),
            LinkProfile::unshaped(),
        );
        let summary = fwd.relational_summary();
        assert!(summary.contains("lfn://h/1"));
        assert!(summary.contains("lfn://h/2"));
        assert!(!summary.contains("lfn://h/3") || summary.fill_ratio() > 0.0);
    }
}
