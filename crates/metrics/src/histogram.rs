//! Log2-bucketed latency histogram with atomic recording.
//!
//! The histogram covers microsecond latencies with [`BUCKET_COUNT`] (32)
//! power-of-two buckets: bucket 0 holds zero-duration samples, bucket `i`
//! (for `1 <= i <= 30`) holds samples in `[2^(i-1), 2^i - 1]` µs, and the
//! last bucket saturates — it absorbs everything at or above 2^30 µs
//! (~18 minutes), so no sample is ever dropped. Quantiles are read from a
//! [`HistogramSnapshot`] by walking the cumulative bucket counts and
//! reporting the matching bucket's upper bound, clamped to the observed
//! maximum; the error is therefore bounded by the bucket width (a factor
//! of two), which is plenty for the paper's figures where the interesting
//! differences are 2–10×.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of log2 buckets in a [`LatencyHistogram`].
pub const BUCKET_COUNT: usize = 32;

/// Index of the saturating last bucket.
const LAST: usize = BUCKET_COUNT - 1;

/// Bucket index for a sample of `micros` microseconds.
///
/// Zero maps to bucket 0; otherwise the index is the bit length of the
/// value (`64 - leading_zeros`), clamped to the saturating last bucket.
fn bucket_index(micros: u64) -> usize {
    if micros == 0 {
        0
    } else {
        ((64 - micros.leading_zeros()) as usize).min(LAST)
    }
}

/// Inclusive upper bound, in microseconds, of bucket `index`.
///
/// The saturating last bucket has no finite upper bound and reports
/// `u64::MAX`; quantile extraction clamps it to the observed maximum.
pub fn bucket_upper_micros(index: usize) -> u64 {
    match index {
        0 => 0,
        i if i >= LAST => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

/// A fixed-size log2 latency histogram, safe to record into from many
/// threads without locking.
///
/// Recording is three relaxed atomic adds and an atomic max; reading is
/// done through [`LatencyHistogram::snapshot`], which copies the counters
/// into an immutable [`HistogramSnapshot`].
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKET_COUNT],
    count: AtomicU64,
    sum_micros: AtomicU64,
    max_micros: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// Create an empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_micros: AtomicU64::new(0),
            max_micros: AtomicU64::new(0),
        }
    }

    /// Record one duration sample.
    pub fn record(&self, d: Duration) {
        self.record_micros(d.as_micros().min(u64::MAX as u128) as u64);
    }

    /// Record one sample expressed in microseconds.
    pub fn record_micros(&self, micros: u64) {
        self.buckets[bucket_index(micros)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
        self.max_micros.fetch_max(micros, Ordering::Relaxed);
    }

    /// Copy the current counters into an immutable snapshot.
    ///
    /// Snapshots taken while other threads record are internally
    /// consistent enough for reporting (counts may trail the sum by a few
    /// in-flight samples) — the server only snapshots on `stats` RPCs.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum_micros: self.sum_micros.load(Ordering::Relaxed),
            max_micros: self.max_micros.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of a [`LatencyHistogram`]'s counters.
///
/// This is the form that travels on the wire (see `rls-proto`) and that
/// quantiles are extracted from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts; bucket `i` covers `[2^(i-1), 2^i - 1]` µs
    /// (bucket 0 holds zero-duration samples, the last bucket saturates).
    pub buckets: [u64; BUCKET_COUNT],
    /// Total number of recorded samples.
    pub count: u64,
    /// Sum of all recorded samples, in microseconds (wraps on overflow,
    /// which at 2^64 µs is ~585 millennia of cumulative latency).
    pub sum_micros: u64,
    /// Largest recorded sample, in microseconds.
    pub max_micros: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            buckets: [0; BUCKET_COUNT],
            count: 0,
            sum_micros: 0,
            max_micros: 0,
        }
    }
}

impl HistogramSnapshot {
    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean sample value in microseconds, or 0.0 for an empty histogram.
    pub fn mean_micros(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_micros as f64 / self.count as f64
        }
    }

    /// Upper-bound estimate of the `q`-quantile (`0.0..=1.0`) in
    /// microseconds.
    ///
    /// Walks the cumulative bucket counts to the bucket containing the
    /// requested rank and returns that bucket's inclusive upper bound,
    /// clamped to the observed maximum. Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                return bucket_upper_micros(i).min(self.max_micros);
            }
        }
        // Unreachable when count matches the buckets, but a torn
        // concurrent snapshot could get here: fall back to the maximum.
        self.max_micros
    }

    /// Median (p50) estimate in microseconds.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th-percentile estimate in microseconds.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th-percentile estimate in microseconds.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Fold another snapshot into this one (bucket-wise sum, saturating).
    ///
    /// Used to aggregate per-role registries into one server-wide report.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b = b.saturating_add(*o);
        }
        self.count = self.count.saturating_add(other.count);
        self.sum_micros = self.sum_micros.saturating_add(other.sum_micros);
        self.max_micros = self.max_micros.max(other.max_micros);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(1 << 30), LAST);
        assert_eq!(bucket_index(u64::MAX), LAST);
    }

    #[test]
    fn upper_bounds_cover_indexes() {
        assert_eq!(bucket_upper_micros(0), 0);
        assert_eq!(bucket_upper_micros(1), 1);
        assert_eq!(bucket_upper_micros(10), 1023);
        assert_eq!(bucket_upper_micros(LAST), u64::MAX);
        // Every non-saturating bucket's upper bound maps back to it.
        for i in 1..LAST {
            assert_eq!(bucket_index(bucket_upper_micros(i)), i, "bucket {i}");
        }
    }

    #[test]
    fn zero_samples() {
        let h = LatencyHistogram::new();
        let s = h.snapshot();
        assert!(s.is_empty());
        assert_eq!(s.count, 0);
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.p99(), 0);
        assert_eq!(s.max_micros, 0);
        assert_eq!(s.mean_micros(), 0.0);
    }

    #[test]
    fn single_sample() {
        let h = LatencyHistogram::new();
        h.record_micros(100);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.sum_micros, 100);
        assert_eq!(s.max_micros, 100);
        // All quantiles clamp to the single observed value.
        assert_eq!(s.p50(), 100);
        assert_eq!(s.p90(), 100);
        assert_eq!(s.p99(), 100);
        assert_eq!(s.quantile(0.0), 100);
        assert_eq!(s.quantile(1.0), 100);
    }

    #[test]
    fn zero_duration_samples_land_in_bucket_zero() {
        let h = LatencyHistogram::new();
        h.record(Duration::ZERO);
        h.record_micros(0);
        let s = h.snapshot();
        assert_eq!(s.buckets[0], 2);
        assert_eq!(s.count, 2);
        assert_eq!(s.p99(), 0);
    }

    #[test]
    fn saturating_bucket_absorbs_overflow() {
        let h = LatencyHistogram::new();
        h.record_micros(u64::MAX);
        h.record_micros(1 << 30);
        h.record_micros((1 << 30) - 1); // largest value below the last bucket
        let s = h.snapshot();
        assert_eq!(s.buckets[LAST], 2);
        assert_eq!(s.buckets[LAST - 1], 1);
        assert_eq!(s.max_micros, u64::MAX);
        // The saturating bucket reports the observed maximum, not u64::MAX
        // masquerading as a finite bound.
        assert_eq!(s.quantile(1.0), u64::MAX);
        // rank(1/3) = 1 → the one sample below the saturating bucket.
        assert_eq!(s.quantile(1.0 / 3.0), (1 << 30) - 1);
        // rank(0.5) = 2 → already inside the saturating bucket.
        assert_eq!(s.p50(), u64::MAX);
    }

    #[test]
    fn quantiles_at_bucket_boundaries() {
        let h = LatencyHistogram::new();
        h.record_micros(1); // bucket 1, upper bound 1
        h.record_micros(1000); // bucket 10, upper bound 1023
        let s = h.snapshot();
        // rank(0.5) = ceil(1.0) = 1 → first bucket with mass.
        assert_eq!(s.p50(), 1);
        // rank(0.9) = ceil(1.8) = 2 → second sample's bucket, clamped to
        // the observed max (1000 < 1023).
        assert_eq!(s.p90(), 1000);
        assert_eq!(s.quantile(1.0), 1000);
    }

    #[test]
    fn quantile_rank_walks_cumulative_counts() {
        let h = LatencyHistogram::new();
        for _ in 0..90 {
            h.record_micros(10); // bucket 4, upper 15
        }
        for _ in 0..10 {
            h.record_micros(5000); // bucket 13, upper 8191
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.p50(), 15);
        assert_eq!(s.p90(), 15); // rank 90 is the last fast sample
        assert_eq!(s.p99(), 5000); // rank 99 lands in the slow bucket
        assert_eq!(s.max_micros, 5000);
    }

    #[test]
    fn merge_of_two_snapshots() {
        let a = LatencyHistogram::new();
        a.record_micros(10);
        a.record_micros(20);
        let b = LatencyHistogram::new();
        b.record_micros(4000);
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged.count, 3);
        assert_eq!(merged.sum_micros, 4030);
        assert_eq!(merged.max_micros, 4000);
        assert_eq!(merged.quantile(1.0), 4000);
        // Merging an empty snapshot is the identity.
        let before = merged;
        merged.merge(&HistogramSnapshot::default());
        assert_eq!(merged, before);
        // Merge saturates rather than wrapping.
        let mut big = HistogramSnapshot {
            sum_micros: u64::MAX - 1,
            ..HistogramSnapshot::default()
        };
        big.merge(&merged);
        assert_eq!(big.sum_micros, u64::MAX);
    }

    #[test]
    fn mean_is_sum_over_count() {
        let h = LatencyHistogram::new();
        h.record_micros(100);
        h.record_micros(300);
        assert_eq!(h.snapshot().mean_micros(), 200.0);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        use std::sync::Arc;
        let h = Arc::new(LatencyHistogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.record_micros(t * 1000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4000);
        assert_eq!(s.buckets.iter().sum::<u64>(), 4000);
        assert_eq!(s.max_micros, 3999);
    }
}
