/root/repo/target/release/deps/rls_bloom-ee80d4df89179778.d: crates/bloom/src/lib.rs crates/bloom/src/counting.rs crates/bloom/src/filter.rs crates/bloom/src/hash.rs crates/bloom/src/params.rs

/root/repo/target/release/deps/librls_bloom-ee80d4df89179778.rlib: crates/bloom/src/lib.rs crates/bloom/src/counting.rs crates/bloom/src/filter.rs crates/bloom/src/hash.rs crates/bloom/src/params.rs

/root/repo/target/release/deps/librls_bloom-ee80d4df89179778.rmeta: crates/bloom/src/lib.rs crates/bloom/src/counting.rs crates/bloom/src/filter.rs crates/bloom/src/hash.rs crates/bloom/src/params.rs

crates/bloom/src/lib.rs:
crates/bloom/src/counting.rs:
crates/bloom/src/filter.rs:
crates/bloom/src/hash.rs:
crates/bloom/src/params.rs:
