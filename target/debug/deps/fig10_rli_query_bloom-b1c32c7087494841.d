/root/repo/target/debug/deps/fig10_rli_query_bloom-b1c32c7087494841.d: crates/bench/benches/fig10_rli_query_bloom.rs

/root/repo/target/debug/deps/fig10_rli_query_bloom-b1c32c7087494841: crates/bench/benches/fig10_rli_query_bloom.rs

crates/bench/benches/fig10_rli_query_bloom.rs:
