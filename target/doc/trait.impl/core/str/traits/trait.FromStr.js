(function() {
    const implementors = Object.fromEntries([["rls_trace",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/str/traits/trait.FromStr.html\" title=\"trait core::str::traits::FromStr\">FromStr</a> for <a class=\"enum\" href=\"rls_trace/enum.Level.html\" title=\"enum rls_trace::Level\">Level</a>",0],["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/str/traits/trait.FromStr.html\" title=\"trait core::str::traits::FromStr\">FromStr</a> for <a class=\"enum\" href=\"rls_trace/enum.LogFormat.html\" title=\"enum rls_trace::LogFormat\">LogFormat</a>",0]]],["rls_types",[["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/str/traits/trait.FromStr.html\" title=\"trait core::str::traits::FromStr\">FromStr</a> for <a class=\"struct\" href=\"rls_types/names/struct.LogicalName.html\" title=\"struct rls_types::names::LogicalName\">LogicalName</a>",0],["impl <a class=\"trait\" href=\"https://doc.rust-lang.org/1.95.0/core/str/traits/trait.FromStr.html\" title=\"trait core::str::traits::FromStr\">FromStr</a> for <a class=\"struct\" href=\"rls_types/names/struct.TargetName.html\" title=\"struct rls_types::names::TargetName\">TargetName</a>",0]]]]);
    if (window.register_implementors) {
        window.register_implementors(implementors);
    } else {
        window.pending_implementors = implementors;
    }
})()
//{"start":59,"fragment_lengths":[549,609]}