/root/repo/target/debug/deps/chaos-702004b1edb38856.d: crates/core/tests/chaos.rs

/root/repo/target/debug/deps/libchaos-702004b1edb38856.rmeta: crates/core/tests/chaos.rs

crates/core/tests/chaos.rs:
