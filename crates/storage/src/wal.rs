//! Write-ahead log.
//!
//! Every committed transaction appends one CRC-protected record containing
//! its mutations; replay applies records in order and stops at the first
//! torn or corrupt record (crash-consistent prefix semantics).
//!
//! The flush policy is the knob behind the paper's Figure 4/5: with
//! [`FlushMode::PerCommit`] the WAL issues `fdatasync` on every commit
//! *while holding the log lock*, which both slows each write and serializes
//! concurrent writers — reproducing the flat, low add rate of "flush
//! enabled". [`FlushMode::Buffered`] leaves durability to the OS page cache
//! ("flush disabled"), trading crash-durability for roughly an order of
//! magnitude in update throughput, which is the trade the paper recommends.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use rls_types::{RlsError, RlsResult, Timestamp};

use crate::profile::FlushMode;
use crate::value::{Row, Value, ValueType};

/// One logged mutation.
#[derive(Clone, Debug, PartialEq)]
pub enum WalOp {
    /// Row inserted into table.
    Insert {
        /// Target table (engine table id).
        table: u32,
        /// The inserted row.
        row: Row,
    },
    /// Row deleted from table.
    Delete {
        /// Target table.
        table: u32,
        /// Heap row id.
        row_id: u64,
    },
    /// Row replaced in place.
    Update {
        /// Target table.
        table: u32,
        /// Heap row id.
        row_id: u64,
        /// New row contents.
        row: Row,
    },
    /// Table vacuumed (dead tuples reclaimed). Logged so replay reproduces
    /// identical free-list state.
    Vacuum {
        /// Target table.
        table: u32,
    },
}

// --- binary encoding helpers -------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }
    fn take(&mut self, n: usize) -> RlsResult<&'a [u8]> {
        if self.pos + n > self.buf.len() {
            return Err(RlsError::storage("wal record truncated"));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }
    fn u8(&mut self) -> RlsResult<u8> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> RlsResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }
    fn u64(&mut self) -> RlsResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }
    fn done(&self) -> bool {
        self.pos == self.buf.len()
    }
}

fn encode_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Int(i) => {
            out.push(ValueType::Int as u8);
            put_u64(out, *i as u64);
        }
        Value::Str(s) => {
            out.push(ValueType::Str as u8);
            put_u32(out, s.len() as u32);
            out.extend_from_slice(s.as_bytes());
        }
        Value::Float(f) => {
            out.push(ValueType::Float as u8);
            put_u64(out, f.to_bits());
        }
        Value::Time(t) => {
            out.push(ValueType::Time as u8);
            put_u64(out, t.as_micros());
        }
    }
}

fn decode_value(r: &mut Reader<'_>) -> RlsResult<Value> {
    let tag = ValueType::from_u8(r.u8()?)
        .ok_or_else(|| RlsError::storage("wal: unknown value tag"))?;
    Ok(match tag {
        ValueType::Int => Value::Int(r.u64()? as i64),
        ValueType::Str => {
            let len = r.u32()? as usize;
            let bytes = r.take(len)?;
            let s = std::str::from_utf8(bytes)
                .map_err(|_| RlsError::storage("wal: invalid utf-8 in string value"))?;
            Value::str(s)
        }
        ValueType::Float => Value::Float(f64::from_bits(r.u64()?)),
        ValueType::Time => Value::Time(Timestamp::from_unix_micros(r.u64()?)),
    })
}

fn encode_row(out: &mut Vec<u8>, row: &Row) {
    put_u32(out, row.len() as u32);
    for v in row {
        encode_value(out, v);
    }
}

fn decode_row(r: &mut Reader<'_>) -> RlsResult<Row> {
    let n = r.u32()? as usize;
    if n > 1_000 {
        return Err(RlsError::storage("wal: implausible row arity"));
    }
    (0..n).map(|_| decode_value(r)).collect()
}

fn encode_op(out: &mut Vec<u8>, op: &WalOp) {
    match op {
        WalOp::Insert { table, row } => {
            out.push(0);
            put_u32(out, *table);
            encode_row(out, row);
        }
        WalOp::Delete { table, row_id } => {
            out.push(1);
            put_u32(out, *table);
            put_u64(out, *row_id);
        }
        WalOp::Update { table, row_id, row } => {
            out.push(2);
            put_u32(out, *table);
            put_u64(out, *row_id);
            encode_row(out, row);
        }
        WalOp::Vacuum { table } => {
            out.push(3);
            put_u32(out, *table);
        }
    }
}

fn decode_op(r: &mut Reader<'_>) -> RlsResult<WalOp> {
    Ok(match r.u8()? {
        0 => WalOp::Insert {
            table: r.u32()?,
            row: decode_row(r)?,
        },
        1 => WalOp::Delete {
            table: r.u32()?,
            row_id: r.u64()?,
        },
        2 => WalOp::Update {
            table: r.u32()?,
            row_id: r.u64()?,
            row: decode_row(r)?,
        },
        3 => WalOp::Vacuum { table: r.u32()? },
        _ => return Err(RlsError::storage("wal: unknown op tag")),
    })
}

// --- crc32 (IEEE 802.3) ------------------------------------------------------

fn crc32_table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *slot = c;
        }
        table
    })
}

/// CRC-32 (IEEE) over a byte slice.
pub fn crc32(data: &[u8]) -> u32 {
    let table = crc32_table();
    let mut c = 0xFFFF_FFFFu32;
    for &b in data {
        c = table[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// --- the log itself ----------------------------------------------------------

/// An append-only transaction log on disk.
pub struct Wal {
    path: PathBuf,
    writer: BufWriter<File>,
    flush: FlushMode,
    simulated_sync_latency: Option<std::time::Duration>,
    records_written: u64,
    bytes_written: u64,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("path", &self.path)
            .field("flush", &self.flush)
            .field("records_written", &self.records_written)
            .finish_non_exhaustive()
    }
}

impl Wal {
    /// Opens (creating or appending) a WAL at `path`.
    pub fn open(
        path: impl AsRef<Path>,
        flush: FlushMode,
        simulated_sync_latency: Option<std::time::Duration>,
    ) -> RlsResult<Self> {
        let path = path.as_ref().to_path_buf();
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| RlsError::storage(format!("open wal {path:?}: {e}")))?;
        Ok(Self {
            path,
            writer: BufWriter::new(file),
            flush,
            simulated_sync_latency,
            records_written: 0,
            bytes_written: 0,
        })
    }

    /// The log file path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Committed records so far (this process).
    pub fn records_written(&self) -> u64 {
        self.records_written
    }

    /// Bytes appended so far (this process).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Appends one transaction's ops as a single atomic record and applies
    /// the flush policy.
    pub fn append_txn(&mut self, ops: &[WalOp]) -> RlsResult<()> {
        let mut payload = Vec::with_capacity(64 * ops.len() + 8);
        put_u32(&mut payload, ops.len() as u32);
        for op in ops {
            encode_op(&mut payload, op);
        }
        let mut frame = Vec::with_capacity(payload.len() + 8);
        put_u32(&mut frame, payload.len() as u32);
        put_u32(&mut frame, crc32(&payload));
        frame.extend_from_slice(&payload);
        self.writer
            .write_all(&frame)
            .map_err(|e| RlsError::storage(format!("wal write: {e}")))?;
        self.records_written += 1;
        self.bytes_written += frame.len() as u64;
        match self.flush {
            FlushMode::PerCommit => {
                self.writer
                    .flush()
                    .map_err(|e| RlsError::storage(format!("wal flush: {e}")))?;
                self.writer
                    .get_ref()
                    .sync_data()
                    .map_err(|e| RlsError::storage(format!("wal sync: {e}")))?;
                if let Some(d) = self.simulated_sync_latency {
                    // Model 2003-era disk rotational latency (see
                    // BackendProfile::simulated_sync_latency).
                    std::thread::sleep(d);
                }
            }
            FlushMode::Buffered => {
                // Hand bytes to the OS promptly but skip the device sync —
                // the OS writes them back "periodically", as the paper puts
                // it.
                self.writer
                    .flush()
                    .map_err(|e| RlsError::storage(format!("wal flush: {e}")))?;
            }
            FlushMode::None => unreachable!("FlushMode::None databases have no Wal"),
        }
        Ok(())
    }

    /// Forces buffered bytes to the device (checkpoint boundary).
    pub fn sync(&mut self) -> RlsResult<()> {
        self.writer
            .flush()
            .map_err(|e| RlsError::storage(format!("wal flush: {e}")))?;
        self.writer
            .get_ref()
            .sync_data()
            .map_err(|e| RlsError::storage(format!("wal sync: {e}")))?;
        Ok(())
    }

    /// Truncates the log (after a successful snapshot).
    pub fn truncate(&mut self) -> RlsResult<()> {
        self.writer
            .flush()
            .map_err(|e| RlsError::storage(format!("wal flush: {e}")))?;
        self.writer
            .get_ref()
            .set_len(0)
            .map_err(|e| RlsError::storage(format!("wal truncate: {e}")))?;
        // Re-open so the append cursor resets.
        let file = OpenOptions::new()
            .append(true)
            .open(&self.path)
            .map_err(|e| RlsError::storage(format!("wal reopen: {e}")))?;
        self.writer = BufWriter::new(file);
        Ok(())
    }

    /// Reads back every complete, CRC-valid transaction record. Stops
    /// silently at the first torn/corrupt record (crash prefix).
    pub fn replay(path: impl AsRef<Path>) -> RlsResult<Vec<Vec<WalOp>>> {
        let mut bytes = Vec::new();
        match File::open(path.as_ref()) {
            Ok(mut f) => {
                f.read_to_end(&mut bytes)
                    .map_err(|e| RlsError::storage(format!("wal read: {e}")))?;
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(RlsError::storage(format!("wal open for replay: {e}"))),
        }
        let mut txns = Vec::new();
        let mut pos = 0usize;
        while pos + 8 <= bytes.len() {
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4")) as usize;
            let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("4"));
            let start = pos + 8;
            let end = match start.checked_add(len) {
                Some(e) if e <= bytes.len() => e,
                _ => break, // torn tail
            };
            let payload = &bytes[start..end];
            if crc32(payload) != crc {
                break; // corrupt record: stop at last good prefix
            }
            let mut r = Reader::new(payload);
            let n = r.u32()? as usize;
            let mut ops = Vec::with_capacity(n);
            let mut ok = true;
            for _ in 0..n {
                match decode_op(&mut r) {
                    Ok(op) => ops.push(op),
                    Err(_) => {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok || !r.done() {
                break;
            }
            txns.push(ops);
            pos = end;
        }
        Ok(txns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("rls-wal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(format!("{name}-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    fn sample_ops() -> Vec<WalOp> {
        vec![
            WalOp::Insert {
                table: 0,
                row: vec![
                    Value::Int(1),
                    Value::str("lfn://a"),
                    Value::Float(2.5),
                    Value::Time(Timestamp::from_unix_secs(7)),
                ],
            },
            WalOp::Delete { table: 1, row_id: 9 },
            WalOp::Update {
                table: 2,
                row_id: 3,
                row: vec![Value::Int(4)],
            },
            WalOp::Vacuum { table: 5 },
        ]
    }

    #[test]
    fn crc32_known_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn append_and_replay_round_trip() {
        let path = tmp("roundtrip");
        let mut wal = Wal::open(&path, FlushMode::Buffered, None).unwrap();
        wal.append_txn(&sample_ops()).unwrap();
        wal.append_txn(&[WalOp::Vacuum { table: 0 }]).unwrap();
        wal.sync().unwrap();
        let txns = Wal::replay(&path).unwrap();
        assert_eq!(txns.len(), 2);
        assert_eq!(txns[0], sample_ops());
        assert_eq!(txns[1], vec![WalOp::Vacuum { table: 0 }]);
    }

    #[test]
    fn replay_missing_file_is_empty() {
        let txns = Wal::replay(tmp("never-written")).unwrap();
        assert!(txns.is_empty());
    }

    #[test]
    fn torn_tail_is_dropped() {
        let path = tmp("torn");
        let mut wal = Wal::open(&path, FlushMode::Buffered, None).unwrap();
        wal.append_txn(&sample_ops()).unwrap();
        wal.append_txn(&sample_ops()).unwrap();
        wal.sync().unwrap();
        drop(wal);
        // Chop bytes off the end to simulate a crash mid-write.
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 5).unwrap();
        let txns = Wal::replay(&path).unwrap();
        assert_eq!(txns.len(), 1);
        assert_eq!(txns[0], sample_ops());
    }

    #[test]
    fn corrupt_record_stops_replay() {
        let path = tmp("corrupt");
        let mut wal = Wal::open(&path, FlushMode::Buffered, None).unwrap();
        wal.append_txn(&sample_ops()).unwrap();
        wal.append_txn(&sample_ops()).unwrap();
        wal.sync().unwrap();
        drop(wal);
        // Flip a byte inside the second record's payload.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() - 3;
        bytes[mid] ^= 0xFF;
        std::fs::write(&path, &bytes).unwrap();
        let txns = Wal::replay(&path).unwrap();
        assert_eq!(txns.len(), 1);
    }

    #[test]
    fn truncate_resets_log() {
        let path = tmp("truncate");
        let mut wal = Wal::open(&path, FlushMode::Buffered, None).unwrap();
        wal.append_txn(&sample_ops()).unwrap();
        wal.truncate().unwrap();
        wal.append_txn(&[WalOp::Vacuum { table: 7 }]).unwrap();
        wal.sync().unwrap();
        let txns = Wal::replay(&path).unwrap();
        assert_eq!(txns, vec![vec![WalOp::Vacuum { table: 7 }]]);
    }

    #[test]
    fn per_commit_flush_writes_through() {
        let path = tmp("percommit");
        let mut wal = Wal::open(&path, FlushMode::PerCommit, None).unwrap();
        wal.append_txn(&sample_ops()).unwrap();
        // No explicit sync: record must already be durable-readable.
        let txns = Wal::replay(&path).unwrap();
        assert_eq!(txns.len(), 1);
        assert_eq!(wal.records_written(), 1);
        assert!(wal.bytes_written() > 0);
    }
}
