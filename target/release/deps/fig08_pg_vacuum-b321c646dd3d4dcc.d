/root/repo/target/release/deps/fig08_pg_vacuum-b321c646dd3d4dcc.d: crates/bench/benches/fig08_pg_vacuum.rs

/root/repo/target/release/deps/fig08_pg_vacuum-b321c646dd3d4dcc: crates/bench/benches/fig08_pg_vacuum.rs

crates/bench/benches/fig08_pg_vacuum.rs:
