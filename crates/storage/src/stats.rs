//! Engine operation counters.

/// Monotonic counters exposed for benchmarks and the server's stats RPC.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Rows inserted.
    pub inserts: u64,
    /// Rows deleted.
    pub deletes: u64,
    /// Rows updated.
    pub updates: u64,
    /// Transactions committed.
    pub commits: u64,
    /// Commits that group-committed a multi-item bulk request: the whole
    /// batch reached the WAL as one record and paid one `fdatasync`
    /// (Fig. 11's bulk-operation advantage).
    pub group_commits: u64,
    /// Vacuum passes executed.
    pub vacuums: u64,
    /// Dead tuples reclaimed by vacuums.
    pub tuples_reclaimed: u64,
    /// Cumulative microseconds spent in [`commit`](crate::Database::commit)
    /// (WAL append + flush) — the cost the paper toggles with "database
    /// flush enabled/disabled" (Fig. 4–5).
    pub commit_micros: u64,
    /// Cumulative microseconds spent in vacuum passes (the dips of the
    /// PostgreSQL saw-tooth, Fig. 8).
    pub vacuum_micros: u64,
}

impl EngineStats {
    /// Fold another engine's counters into this one. Used to aggregate
    /// per-shard engines into the single `lrc.engine.*` stats surface.
    pub fn accumulate(&mut self, other: &EngineStats) {
        self.inserts += other.inserts;
        self.deletes += other.deletes;
        self.updates += other.updates;
        self.commits += other.commits;
        self.group_commits += other.group_commits;
        self.vacuums += other.vacuums;
        self.tuples_reclaimed += other.tuples_reclaimed;
        self.commit_micros += other.commit_micros;
        self.vacuum_micros += other.vacuum_micros;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_zeroed() {
        let s = EngineStats::default();
        assert_eq!(s.inserts + s.deletes + s.updates + s.commits, 0);
    }
}
