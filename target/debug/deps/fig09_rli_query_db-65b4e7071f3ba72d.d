/root/repo/target/debug/deps/fig09_rli_query_db-65b4e7071f3ba72d.d: crates/bench/benches/fig09_rli_query_db.rs

/root/repo/target/debug/deps/fig09_rli_query_db-65b4e7071f3ba72d: crates/bench/benches/fig09_rli_query_db.rs

crates/bench/benches/fig09_rli_query_db.rs:
