/root/repo/target/debug/deps/micro_bloom-992ae6ae24e58d9c.d: crates/bench/benches/micro_bloom.rs Cargo.toml

/root/repo/target/debug/deps/libmicro_bloom-992ae6ae24e58d9c.rmeta: crates/bench/benches/micro_bloom.rs Cargo.toml

crates/bench/benches/micro_bloom.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
