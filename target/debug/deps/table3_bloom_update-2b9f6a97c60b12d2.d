/root/repo/target/debug/deps/table3_bloom_update-2b9f6a97c60b12d2.d: crates/bench/benches/table3_bloom_update.rs Cargo.toml

/root/repo/target/debug/deps/libtable3_bloom_update-2b9f6a97c60b12d2.rmeta: crates/bench/benches/table3_bloom_update.rs Cargo.toml

crates/bench/benches/table3_bloom_update.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
