/root/repo/target/release/deps/micro_softstate-f32e57a799f4c2b6.d: crates/bench/benches/micro_softstate.rs

/root/repo/target/release/deps/micro_softstate-f32e57a799f4c2b6: crates/bench/benches/micro_softstate.rs

crates/bench/benches/micro_softstate.rs:
