//! Admission-control suite: the bounded worker pool must reject over-cap
//! connections with a retryable `Busy` (never a silent EOF), reclaim slots
//! on every disconnect path, bound handler concurrency at `worker_threads`,
//! and reap idle connections.
//!
//! Servers are built straight from `ServerConfig` so each test can pin
//! `max_connections` / `worker_threads` / `idle_timeout` to tiny values
//! that make the behaviour deterministic.

use std::io::Write as _;
use std::net::TcpStream;
use std::time::{Duration, Instant};

use rls_core::{RlsClient, Server, ServerConfig};
use rls_net::{LinkProfile, RetryPolicy};
use rls_proto::ServerStatsWire;
use rls_types::{Dn, ErrorCode};

fn counter(stats: &ServerStatsWire, name: &str) -> u64 {
    stats
        .counters
        .iter()
        .find(|(n, _)| n == name)
        .map(|(_, v)| *v)
        .unwrap_or(0)
}

fn lrc_with(max_connections: usize, worker_threads: usize, idle_timeout: Duration) -> Server {
    Server::start(ServerConfig {
        max_connections,
        worker_threads,
        idle_timeout,
        ..ServerConfig::lrc_default()
    })
    .unwrap()
}

/// Waits until `active_connections` reports `want`, panicking on timeout.
fn wait_active(server: &Server, want: usize, deadline: Duration) {
    let start = Instant::now();
    while server.active_connections() != want {
        assert!(
            start.elapsed() < deadline,
            "active_connections stuck at {} (wanted {want})",
            server.active_connections()
        );
        std::thread::sleep(Duration::from_millis(2));
    }
}

fn patient_retry() -> RetryPolicy {
    RetryPolicy {
        max_retries: 50,
        backoff_base: Duration::from_millis(2),
        backoff_max: Duration::from_millis(30),
        jitter_pct: 50,
        connect_timeout: Some(Duration::from_secs(2)),
        request_timeout: None,
    }
}

/// Over-cap connections get an explicit `Busy` error frame — not a silent
/// close — and the rejection is visible as `server.busy_rejects`.
#[test]
fn over_cap_gets_busy_not_silent_eof() {
    let server = lrc_with(1, 2, Duration::from_secs(300));
    let dn = Dn::anonymous();
    // Holder occupies the only admission slot.
    let mut holder = RlsClient::connect(server.addr(), &dn).unwrap();
    holder.ping().unwrap();

    // A fail-fast client must surface the server's Busy verdict as an
    // error, proving the rejection travelled the wire as a real frame.
    let err = RlsClient::connect(server.addr(), &dn).expect_err("over-cap connect must fail");
    assert_eq!(err.code(), ErrorCode::Busy, "got {err}");
    assert!(RetryPolicy::is_retryable(err.code()));

    let stats = holder.stats().unwrap();
    assert!(counter(&stats, "server.busy_rejects") >= 1, "{stats:?}");
    server.shutdown();
}

/// A retrying client parked behind a full server is admitted as soon as
/// the slot holder disconnects — the backoff loop turns `Busy` into a
/// wait, not a failure.
#[test]
fn retry_client_admitted_after_slot_frees() {
    let server = lrc_with(1, 2, Duration::from_secs(300));
    let dn = Dn::anonymous();
    let holder = RlsClient::connect(server.addr(), &dn).unwrap();

    let addr = server.addr();
    let waiter = std::thread::spawn(move || {
        let mut c = RlsClient::connect_with(
            addr,
            &Dn::anonymous(),
            LinkProfile::unshaped(),
            None,
            patient_retry(),
            None,
            None,
        )?;
        c.create_mapping("lfn://adm/retry", "pfn://adm/retry")?;
        c.query_lfn("lfn://adm/retry")
    });

    // Give the waiter time to collect at least one Busy, then free the slot.
    std::thread::sleep(Duration::from_millis(40));
    drop(holder);

    let pfns = waiter.join().unwrap().expect("retries should win the freed slot");
    assert_eq!(pfns, vec!["pfn://adm/retry".to_string()]);
    server.shutdown();
}

/// A connection that dies mid-frame (header sent, body never arrives)
/// must give its slot back: `active_connections` returns to zero and the
/// next client is admitted normally.
#[test]
fn slot_reclaimed_on_mid_request_close() {
    let server = lrc_with(1, 2, Duration::from_secs(300));
    let dn = Dn::anonymous();

    {
        let mut raw = TcpStream::connect(server.addr()).unwrap();
        // Length prefix promising 64 bytes, then only 8 — a half request.
        raw.write_all(&64u32.to_le_bytes()).unwrap();
        raw.write_all(&[0u8; 8]).unwrap();
        raw.flush().unwrap();
        wait_active(&server, 1, Duration::from_secs(2));
    } // socket drops here with the frame still unfinished

    wait_active(&server, 0, Duration::from_secs(2));

    // The freed slot is genuinely reusable (cap is 1).
    let mut c = RlsClient::connect(server.addr(), &dn).unwrap();
    c.ping().unwrap();
    server.shutdown();
}

/// Acceptance criterion for the bounded pool: with `worker_threads = 2`,
/// eight concurrent clients all succeed while at most two requests are
/// ever in a handler simultaneously (`server.workers_busy_hwm`).
#[test]
fn pool_bounds_handler_concurrency() {
    let server = lrc_with(64, 2, Duration::from_secs(300));
    let addr = server.addr();

    let threads: Vec<_> = (0..8)
        .map(|t| {
            std::thread::spawn(move || {
                let mut c = RlsClient::connect(addr, &Dn::anonymous()).unwrap();
                for i in 0..25 {
                    let lfn = format!("lfn://pool/t{t}/f{i}");
                    c.create_mapping(&lfn, &format!("pfn://pool/t{t}/f{i}")).unwrap();
                    assert_eq!(c.query_lfn(&lfn).unwrap().len(), 1);
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }

    let mut c = RlsClient::connect(addr, &Dn::anonymous()).unwrap();
    let stats = c.stats().unwrap();
    assert_eq!(counter(&stats, "server.worker_threads"), 2);
    let hwm = counter(&stats, "server.workers_busy_hwm");
    assert!((1..=2).contains(&hwm), "busy high-water mark {hwm} escaped the pool bound");
    assert!(counter(&stats, "server.conns_admitted") >= 8);
    server.shutdown();
}

/// Idle connections are reaped after `idle_timeout`, freeing their slot;
/// the reap is visible as `server.idle_reaped` and the stale client sees
/// an error (not a hang) on its next call.
#[test]
fn idle_connections_are_reaped() {
    let server = lrc_with(8, 2, Duration::from_millis(40));
    let dn = Dn::anonymous();

    let mut stale = RlsClient::connect(server.addr(), &dn).unwrap();
    stale.ping().unwrap();
    wait_active(&server, 0, Duration::from_secs(2));

    assert!(stale.ping().is_err(), "reaped connection must not answer");

    let mut fresh = RlsClient::connect(server.addr(), &dn).unwrap();
    let stats = fresh.stats().unwrap();
    assert!(counter(&stats, "server.idle_reaped") >= 1, "{stats:?}");
    server.shutdown();
}
