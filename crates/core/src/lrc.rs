//! The LRC service: the catalog plus the bookkeeping that feeds soft-state
//! updates.
//!
//! Every mapping mutation flows through this layer so that:
//!
//! * **immediate mode** can journal LFN-level changes (`added`/`removed`)
//!   for the next incremental update (§3.3);
//! * **Bloom mode** can maintain a counting filter incrementally — the
//!   paper's point that filter generation is "a one-time cost, since
//!   subsequent updates to LRC mappings can be reflected by setting or
//!   unsetting the corresponding bits" (§3.5, Table 3 column 3).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::{Mutex, RwLock};

use rls_bloom::{BloomFilter, BloomParams, CountingBloomFilter};
use rls_metrics::Registry;
use rls_storage::{LrcDatabase, MappingChange};
use rls_types::{Mapping, RlsResult};

use crate::config::{LrcConfig, UpdateMode};

/// Cap on buffered originating trace IDs per delta journal; beyond this a
/// flush simply attributes the send to the IDs it kept (the span journal is
/// best-effort observability, not an audit log).
const TRACE_IDS_CAP: usize = 1024;

/// Journal of LFN-level changes since the last incremental update.
#[derive(Debug, Default)]
pub struct DeltaLog {
    /// Logical names registered since the last flush.
    pub added: Vec<String>,
    /// Logical names fully removed since the last flush.
    pub removed: Vec<String>,
    /// Trace IDs of the client operations that produced these changes
    /// (deduplicated consecutively, capped at [`TRACE_IDS_CAP`]); the
    /// updater attributes its `softstate.delta_send` spans to them so a
    /// trace follows the change across the soft-state plane.
    pub trace_ids: Vec<u64>,
}

impl DeltaLog {
    /// Total buffered changes (trace IDs are metadata, not changes).
    pub fn len(&self) -> usize {
        self.added.len() + self.removed.len()
    }

    /// True if nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }

    fn note_trace(&mut self, trace_id: u64) {
        if trace_id != 0
            && self.trace_ids.last() != Some(&trace_id)
            && self.trace_ids.len() < TRACE_IDS_CAP
        {
            self.trace_ids.push(trace_id);
        }
    }
}

/// The LRC role of a server.
pub struct LrcService {
    /// The catalog, readable concurrently, writable exclusively.
    pub db: RwLock<LrcDatabase>,
    config: LrcConfig,
    deltas: Mutex<DeltaLog>,
    /// Per-RLI backlog of deltas whose send failed: the partial-flush
    /// requeue target. Keyed by the RLI address exactly as it appears on
    /// the update list, so a delivered target never re-receives deltas
    /// that only failed toward a *different* RLI.
    backlog: Mutex<HashMap<String, DeltaLog>>,
    /// Counting filter maintained incrementally in Bloom mode.
    bloom: Option<Mutex<CountingBloomFilter>>,
    bloom_params: BloomParams,
    /// Times the filter had to be regenerated from the catalog.
    bloom_regenerations: AtomicU64,
    queries: AtomicU64,
    /// Role-level metrics: `storage.*` mutation/query latencies plus the
    /// `softstate.*` series recorded by the updater.
    metrics: Registry,
}

impl std::fmt::Debug for LrcService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LrcService").finish_non_exhaustive()
    }
}

/// Initial counting-filter capacity when the catalog is still empty. The
/// filter is regenerated at the right size (10 bits per mapping, §3.4) by
/// the next [`LrcService::bloom_snapshot`] once the catalog outgrows it.
const INITIAL_BLOOM_CAPACITY: u64 = 4_096;

impl LrcService {
    /// Builds the service, opening or creating the catalog.
    pub fn new(config: LrcConfig) -> RlsResult<Self> {
        let db = match &config.wal_path {
            Some(path) => LrcDatabase::open(config.profile, path)?,
            None => LrcDatabase::in_memory(config.profile),
        };
        let bloom_params = match config.update.mode {
            UpdateMode::Bloom { params, .. } => params,
            _ => BloomParams::PAPER,
        };
        let bloom = if config.update.mode.is_bloom() {
            let capacity = db.lfn_count().max(INITIAL_BLOOM_CAPACITY);
            let mut filter = CountingBloomFilter::with_capacity(bloom_params, capacity);
            db.for_each_lfn(|lfn| filter.insert(lfn));
            Some(Mutex::new(filter))
        } else {
            None
        };
        Ok(Self {
            db: RwLock::new(db),
            config,
            deltas: Mutex::new(DeltaLog::default()),
            backlog: Mutex::new(HashMap::new()),
            bloom,
            bloom_params,
            bloom_regenerations: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            metrics: Registry::new(),
        })
    }

    /// The role configuration.
    pub fn config(&self) -> &LrcConfig {
        &self.config
    }

    /// The LRC's metrics registry, merged into the server's stats report.
    pub fn metrics(&self) -> &Registry {
        &self.metrics
    }

    /// Counts a served query (wildcard and point) for the stats RPC.
    pub fn count_query(&self) {
        self.queries.fetch_add(1, Ordering::Relaxed);
    }

    /// Queries served so far via the RPC surface.
    pub fn queries_served(&self) -> u64 {
        self.queries.load(Ordering::Relaxed)
    }

    fn note_change(&self, m: &Mapping, change: MappingChange, trace_id: u64) {
        if change.lfn_created || change.lfn_deleted {
            let track_deltas = matches!(self.config.update.mode, UpdateMode::Immediate { .. });
            if track_deltas {
                let mut log = self.deltas.lock();
                if change.lfn_created {
                    log.added.push(m.logical.as_str().to_owned());
                } else {
                    log.removed.push(m.logical.as_str().to_owned());
                }
                log.note_trace(trace_id);
            }
            if let Some(bloom) = &self.bloom {
                let mut filter = bloom.lock();
                if change.lfn_created {
                    filter.insert(m.logical.as_str());
                } else {
                    filter.remove(m.logical.as_str());
                }
            }
        }
    }

    /// `create` through the service (journals the change).
    pub fn create_mapping(&self, m: &Mapping) -> RlsResult<MappingChange> {
        self.create_mapping_traced(m, 0)
    }

    /// `create` attributed to a trace (0 means untraced).
    pub fn create_mapping_traced(&self, m: &Mapping, trace_id: u64) -> RlsResult<MappingChange> {
        let t0 = std::time::Instant::now();
        let change = self.db.write().create_mapping(m)?;
        self.note_change(m, change, trace_id);
        self.metrics.histogram("storage.create").record(t0.elapsed());
        Ok(change)
    }

    /// `add` through the service.
    pub fn add_mapping(&self, m: &Mapping) -> RlsResult<MappingChange> {
        self.add_mapping_traced(m, 0)
    }

    /// `add` attributed to a trace (0 means untraced).
    pub fn add_mapping_traced(&self, m: &Mapping, trace_id: u64) -> RlsResult<MappingChange> {
        let t0 = std::time::Instant::now();
        let change = self.db.write().add_mapping(m)?;
        self.note_change(m, change, trace_id);
        self.metrics.histogram("storage.add").record(t0.elapsed());
        Ok(change)
    }

    /// `delete` through the service.
    pub fn delete_mapping(&self, m: &Mapping) -> RlsResult<MappingChange> {
        self.delete_mapping_traced(m, 0)
    }

    /// `delete` attributed to a trace (0 means untraced).
    pub fn delete_mapping_traced(&self, m: &Mapping, trace_id: u64) -> RlsResult<MappingChange> {
        let t0 = std::time::Instant::now();
        let change = self.db.write().delete_mapping(m)?;
        self.note_change(m, change, trace_id);
        self.metrics.histogram("storage.delete").record(t0.elapsed());
        Ok(change)
    }

    /// Drains the delta journal (the payload of one incremental update).
    pub fn take_deltas(&self) -> DeltaLog {
        std::mem::take(&mut *self.deltas.lock())
    }

    /// Buffered delta count (drives threshold-triggered flushes).
    pub fn pending_deltas(&self) -> usize {
        self.deltas.lock().len()
    }

    /// Re-queues deltas that failed to send so they retry next cycle.
    pub fn requeue_deltas(&self, log: DeltaLog) {
        let mut cur = self.deltas.lock();
        // Prepend: original order keeps add-before-remove causality.
        let mut restored = log;
        restored.added.append(&mut cur.added);
        restored.removed.append(&mut cur.removed);
        restored.trace_ids.append(&mut cur.trace_ids);
        restored.trace_ids.truncate(TRACE_IDS_CAP);
        *cur = restored;
    }

    /// Takes the failed-send backlog for one RLI target, if any. The
    /// caller (the updater) prepends it to the fresh payload so a target
    /// that missed a flush catches up in order on the next one.
    pub fn take_backlog(&self, target: &str) -> Option<DeltaLog> {
        self.backlog.lock().remove(target)
    }

    /// Queues deltas that failed to reach `target` for that target's next
    /// flush. Appends after any backlog already waiting (older first).
    pub fn put_backlog(&self, target: &str, log: DeltaLog) {
        if log.is_empty() && log.trace_ids.is_empty() {
            return;
        }
        let mut map = self.backlog.lock();
        let slot = map.entry(target.to_owned()).or_default();
        let mut log = log;
        slot.added.append(&mut log.added);
        slot.removed.append(&mut log.removed);
        for id in log.trace_ids {
            slot.note_trace(id);
        }
    }

    /// Total deltas parked in per-target backlogs (a target that missed a
    /// flush counts its copy; the same LFN toward two dead RLIs counts
    /// twice, because it must be re-sent twice).
    pub fn pending_backlog(&self) -> usize {
        self.backlog.lock().values().map(DeltaLog::len).sum()
    }

    /// Drops backlog entries for targets no longer on the update list
    /// (an RLI removed from `t_rli` must not pin its queue forever).
    pub fn prune_backlog(&self, live: impl Fn(&str) -> bool) -> usize {
        let mut map = self.backlog.lock();
        let before: usize = map.values().map(DeltaLog::len).sum();
        map.retain(|target, _| live(target));
        before - map.values().map(DeltaLog::len).sum::<usize>()
    }

    /// Produces the Bloom bitmap for the next update, regenerating the
    /// counting filter from the catalog when the catalog has outgrown (or
    /// far undershoots) the filter's design capacity.
    ///
    /// Returns `(bitmap, generation_cost_seconds)` where the cost is zero
    /// when the incremental filter could be reused — the distinction
    /// Table 3's columns 2 and 3 draw.
    pub fn bloom_snapshot(&self) -> (BloomFilter, f64) {
        let Some(bloom) = self.bloom.as_ref() else {
            // Not in Bloom update mode: no incrementally-maintained filter
            // exists, so generate one from the catalog (full cost, every
            // time) — what a pre-counting-filter implementation would do.
            let t0 = std::time::Instant::now();
            let db = self.db.read();
            let mut filter = BloomFilter::with_capacity(
                self.bloom_params,
                db.lfn_count().max(INITIAL_BLOOM_CAPACITY),
            );
            db.for_each_lfn(|lfn| filter.insert(lfn));
            return (filter, t0.elapsed().as_secs_f64());
        };
        let db = self.db.read();
        let n = db.lfn_count();
        let mut filter = bloom.lock();
        let capacity_bits = filter.bit_len();
        let needed_bits = self
            .bloom_params
            .bits_for_capacity(n.max(INITIAL_BLOOM_CAPACITY));
        // Regenerate when the live filter is under-provisioned (fpp would
        // exceed design) or wildly over-provisioned (wasting update bytes).
        let regen = needed_bits > capacity_bits || needed_bits * 16 < capacity_bits;
        if regen {
            let t0 = std::time::Instant::now();
            let mut fresh = CountingBloomFilter::with_capacity(
                self.bloom_params,
                n.max(INITIAL_BLOOM_CAPACITY),
            );
            db.for_each_lfn(|lfn| fresh.insert(lfn));
            *filter = fresh;
            self.bloom_regenerations.fetch_add(1, Ordering::Relaxed);
            let cost = t0.elapsed().as_secs_f64();
            (filter.to_bitmap(), cost)
        } else {
            (filter.to_bitmap(), 0.0)
        }
    }

    /// Times the counting filter has been rebuilt from the catalog.
    pub fn bloom_regenerations(&self) -> u64 {
        self.bloom_regenerations.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::UpdateConfig;
    use std::time::Duration;

    fn service(mode: UpdateMode) -> LrcService {
        LrcService::new(LrcConfig {
            update: UpdateConfig {
                mode,
                ..Default::default()
            },
            ..Default::default()
        })
        .unwrap()
    }

    fn m(l: &str, t: &str) -> Mapping {
        Mapping::new(l, t).unwrap()
    }

    #[test]
    fn immediate_mode_journals_lfn_level_changes() {
        let svc = service(UpdateMode::immediate_default());
        svc.create_mapping(&m("lfn://a", "pfn://1")).unwrap();
        svc.add_mapping(&m("lfn://a", "pfn://2")).unwrap(); // no LFN change
        svc.create_mapping(&m("lfn://b", "pfn://3")).unwrap();
        svc.delete_mapping(&m("lfn://b", "pfn://3")).unwrap();
        let log = svc.take_deltas();
        assert_eq!(log.added, vec!["lfn://a", "lfn://b"]);
        assert_eq!(log.removed, vec!["lfn://b"]);
        assert!(svc.take_deltas().is_empty());
    }

    #[test]
    fn non_immediate_modes_skip_the_journal() {
        let svc = service(UpdateMode::Full {
            interval: Duration::from_secs(60),
        });
        svc.create_mapping(&m("lfn://a", "pfn://1")).unwrap();
        assert_eq!(svc.pending_deltas(), 0);
    }

    #[test]
    fn immediate_mode_journals_originating_trace_ids() {
        let svc = service(UpdateMode::immediate_default());
        svc.create_mapping_traced(&m("lfn://a", "pfn://1"), 77).unwrap();
        svc.add_mapping_traced(&m("lfn://a", "pfn://2"), 77).unwrap(); // no LFN change
        svc.create_mapping_traced(&m("lfn://b", "pfn://3"), 77).unwrap(); // consecutive dupe
        svc.delete_mapping_traced(&m("lfn://b", "pfn://3"), 88).unwrap();
        svc.create_mapping_traced(&m("lfn://c", "pfn://4"), 0).unwrap(); // untraced
        let log = svc.take_deltas();
        assert_eq!(log.trace_ids, vec![77, 88]);
        // Requeue merges the IDs back for the retry.
        svc.create_mapping_traced(&m("lfn://d", "pfn://5"), 99).unwrap();
        svc.requeue_deltas(log);
        assert_eq!(svc.take_deltas().trace_ids, vec![77, 88, 99]);
    }

    #[test]
    fn requeue_preserves_order() {
        let svc = service(UpdateMode::immediate_default());
        svc.create_mapping(&m("lfn://a", "pfn://1")).unwrap();
        let log = svc.take_deltas();
        svc.create_mapping(&m("lfn://b", "pfn://2")).unwrap();
        svc.requeue_deltas(log);
        let merged = svc.take_deltas();
        assert_eq!(merged.added, vec!["lfn://a", "lfn://b"]);
    }

    #[test]
    fn backlog_is_scoped_per_target() {
        let svc = service(UpdateMode::immediate_default());
        assert_eq!(svc.pending_backlog(), 0);
        assert!(svc.take_backlog("rli-a").is_none());
        let log = DeltaLog {
            added: vec!["lfn://x".into()],
            removed: vec![],
            trace_ids: vec![7],
        };
        svc.put_backlog("rli-a", log);
        assert_eq!(svc.pending_backlog(), 1);
        // Another target's backlog is independent.
        assert!(svc.take_backlog("rli-b").is_none());
        let got = svc.take_backlog("rli-a").unwrap();
        assert_eq!(got.added, vec!["lfn://x"]);
        assert_eq!(got.trace_ids, vec![7]);
        // take drains it.
        assert!(svc.take_backlog("rli-a").is_none());
        assert_eq!(svc.pending_backlog(), 0);
    }

    #[test]
    fn backlog_appends_in_failure_order() {
        let svc = service(UpdateMode::immediate_default());
        svc.put_backlog(
            "rli-a",
            DeltaLog {
                added: vec!["lfn://first".into()],
                removed: vec![],
                trace_ids: vec![1],
            },
        );
        svc.put_backlog(
            "rli-a",
            DeltaLog {
                added: vec!["lfn://second".into()],
                removed: vec!["lfn://first".into()],
                trace_ids: vec![1, 2],
            },
        );
        let got = svc.take_backlog("rli-a").unwrap();
        assert_eq!(got.added, vec!["lfn://first", "lfn://second"]);
        assert_eq!(got.removed, vec!["lfn://first"]);
        // note_trace dedups the consecutive repeat of 1.
        assert_eq!(got.trace_ids, vec![1, 2]);
        // Empty logs are not stored.
        svc.put_backlog("rli-a", DeltaLog::default());
        assert!(svc.take_backlog("rli-a").is_none());
    }

    #[test]
    fn prune_backlog_drops_dead_targets() {
        let svc = service(UpdateMode::immediate_default());
        for t in ["rli-a", "rli-b"] {
            svc.put_backlog(
                t,
                DeltaLog {
                    added: vec![format!("lfn://for-{t}")],
                    removed: vec![],
                    trace_ids: vec![],
                },
            );
        }
        let dropped = svc.prune_backlog(|t| t == "rli-a");
        assert_eq!(dropped, 1);
        assert_eq!(svc.pending_backlog(), 1);
        assert!(svc.take_backlog("rli-a").is_some());
    }

    #[test]
    fn bloom_mode_maintains_filter_incrementally() {
        let svc = service(UpdateMode::Bloom {
            interval: Duration::from_secs(60),
            params: BloomParams::PAPER,
        });
        svc.create_mapping(&m("lfn://a", "pfn://1")).unwrap();
        svc.create_mapping(&m("lfn://b", "pfn://2")).unwrap();
        let (snap, cost) = svc.bloom_snapshot();
        assert!(snap.contains("lfn://a"));
        assert!(snap.contains("lfn://b"));
        assert_eq!(cost, 0.0, "incremental path must not regenerate");
        svc.delete_mapping(&m("lfn://a", "pfn://1")).unwrap();
        let (snap, _) = svc.bloom_snapshot();
        assert!(!snap.contains("lfn://a"));
        assert!(snap.contains("lfn://b"));
        assert_eq!(svc.bloom_regenerations(), 0);
    }

    #[test]
    fn bloom_regenerates_when_catalog_outgrows_filter() {
        let svc = service(UpdateMode::Bloom {
            interval: Duration::from_secs(60),
            params: BloomParams::PAPER,
        });
        // INITIAL_BLOOM_CAPACITY is 100k; inserting beyond it must force a
        // regeneration on the next snapshot. Use a smaller proxy: shrink by
        // inserting > capacity would be slow, so instead check the
        // over-provisioning path never fires with few entries...
        let (_, cost) = svc.bloom_snapshot();
        assert_eq!(cost, 0.0);
        // ...and the under-provisioning predicate itself:
        let params = BloomParams::PAPER;
        assert!(params.bits_for_capacity(200_000) > params.bits_for_capacity(100_000));
    }

    #[test]
    fn bloom_filter_rebuilt_on_startup_from_durable_catalog() {
        let dir = std::env::temp_dir().join(format!("rls-lrcsvc-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let wal = dir.join("svc.wal");
        let _ = std::fs::remove_file(&wal);
        let cfg = || LrcConfig {
            wal_path: Some(wal.clone()),
            update: UpdateConfig {
                mode: UpdateMode::Bloom {
                    interval: Duration::from_secs(60),
                    params: BloomParams::PAPER,
                },
                ..Default::default()
            },
            ..Default::default()
        };
        {
            let svc = LrcService::new(cfg()).unwrap();
            svc.create_mapping(&m("lfn://persist", "pfn://p")).unwrap();
        }
        let svc = LrcService::new(cfg()).unwrap();
        let (snap, _) = svc.bloom_snapshot();
        assert!(snap.contains("lfn://persist"));
    }
}
