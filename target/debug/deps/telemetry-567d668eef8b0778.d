/root/repo/target/debug/deps/telemetry-567d668eef8b0778.d: crates/metrics/tests/telemetry.rs

/root/repo/target/debug/deps/telemetry-567d668eef8b0778: crates/metrics/tests/telemetry.rs

crates/metrics/tests/telemetry.rs:
