/root/repo/target/debug/deps/rls_server-20d7b586ca1d8cf8.d: src/bin/rls-server.rs

/root/repo/target/debug/deps/rls_server-20d7b586ca1d8cf8: src/bin/rls-server.rs

src/bin/rls-server.rs:
