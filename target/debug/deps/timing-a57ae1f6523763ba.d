/root/repo/target/debug/deps/timing-a57ae1f6523763ba.d: crates/net/tests/timing.rs Cargo.toml

/root/repo/target/debug/deps/libtiming-a57ae1f6523763ba.rmeta: crates/net/tests/timing.rs Cargo.toml

crates/net/tests/timing.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
