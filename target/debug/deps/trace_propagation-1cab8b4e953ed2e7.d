/root/repo/target/debug/deps/trace_propagation-1cab8b4e953ed2e7.d: crates/core/tests/trace_propagation.rs Cargo.toml

/root/repo/target/debug/deps/libtrace_propagation-1cab8b4e953ed2e7.rmeta: crates/core/tests/trace_propagation.rs Cargo.toml

crates/core/tests/trace_propagation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
