/root/repo/target/debug/deps/rls_proto-7e37c7475b9eaf33.d: crates/proto/src/lib.rs crates/proto/src/codec.rs crates/proto/src/frame.rs crates/proto/src/message.rs Cargo.toml

/root/repo/target/debug/deps/librls_proto-7e37c7475b9eaf33.rmeta: crates/proto/src/lib.rs crates/proto/src/codec.rs crates/proto/src/frame.rs crates/proto/src/message.rs Cargo.toml

crates/proto/src/lib.rs:
crates/proto/src/codec.rs:
crates/proto/src/frame.rs:
crates/proto/src/message.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
