//! Deployment harness: spin up wired LRC/RLI topologies on loopback TCP.
//!
//! Used by the quickstart example, the integration tests, and every
//! benchmark harness. Mirrors the deployments of the paper's §6: LIGO
//! (LRCs + RLIs), Earth System Grid (fully-connected combined servers),
//! Pegasus (6 LRCs / 4 RLIs).

use std::sync::Arc;
use std::time::Duration;

use rls_bloom::BloomParams;
use rls_net::{FaultHook, LinkProfile, RetryPolicy, SharedIngress};
use rls_storage::BackendProfile;
use rls_types::{Dn, RlsResult};

use crate::client::RlsClient;
use crate::config::{LrcConfig, RliConfig, ServerConfig, UpdateConfig, UpdateMode};
use crate::server::Server;
use crate::softstate::{Updater, UpdateOutcome, FLAG_BLOOM};

/// Builder for a [`TestDeployment`].
#[derive(Clone, Debug)]
pub struct TestDeploymentBuilder {
    lrcs: usize,
    rlis: usize,
    bloom: bool,
    immediate: bool,
    auto: bool,
    profile: BackendProfile,
    link: LinkProfile,
    ingress: Option<SharedIngress>,
    expire_timeout: Duration,
    chunk_size: usize,
    update_interval: Duration,
    retry: RetryPolicy,
    fault_hook: Option<Arc<dyn FaultHook>>,
    max_connections: usize,
    worker_threads: usize,
    shards: usize,
    rli_shards: usize,
}

impl Default for TestDeploymentBuilder {
    fn default() -> Self {
        Self {
            lrcs: 1,
            rlis: 1,
            bloom: false,
            immediate: false,
            auto: false,
            profile: BackendProfile::mysql_buffered(),
            link: LinkProfile::unshaped(),
            ingress: None,
            expire_timeout: Duration::from_secs(3600),
            chunk_size: 10_000,
            update_interval: Duration::from_secs(3600),
            retry: RetryPolicy::none(),
            fault_hook: None,
            max_connections: 512,
            worker_threads: 0,
            shards: 1,
            rli_shards: 1,
        }
    }
}

impl TestDeploymentBuilder {
    /// Number of LRC servers.
    pub fn lrcs(mut self, n: usize) -> Self {
        self.lrcs = n;
        self
    }

    /// Number of RLI servers.
    pub fn rlis(mut self, n: usize) -> Self {
        self.rlis = n;
        self
    }

    /// Use Bloom-filter updates instead of uncompressed ones.
    pub fn bloom(mut self, yes: bool) -> Self {
        self.bloom = yes;
        self
    }

    /// Use immediate (incremental) mode.
    pub fn immediate(mut self, yes: bool) -> Self {
        self.immediate = yes;
        self
    }

    /// Spawn background update/expire threads (otherwise drive manually
    /// with [`TestDeployment::force_updates`]).
    pub fn auto(mut self, yes: bool) -> Self {
        self.auto = yes;
        self
    }

    /// Database backend profile for all servers.
    pub fn profile(mut self, p: BackendProfile) -> Self {
        self.profile = p;
        self
    }

    /// Link profile for LRC→RLI update traffic.
    pub fn update_link(mut self, link: LinkProfile) -> Self {
        self.link = link;
        self
    }

    /// Shared ingress pool for update traffic (Fig. 13 contention).
    pub fn update_ingress(mut self, ingress: SharedIngress) -> Self {
        self.ingress = Some(ingress);
        self
    }

    /// RLI soft-state timeout.
    pub fn expire_timeout(mut self, d: Duration) -> Self {
        self.expire_timeout = d;
        self
    }

    /// Names per full-update chunk.
    pub fn chunk_size(mut self, n: usize) -> Self {
        self.chunk_size = n;
        self
    }

    /// Background update period (with [`Self::auto`]).
    pub fn update_interval(mut self, d: Duration) -> Self {
        self.update_interval = d;
        self
    }

    /// Retry/backoff policy for LRC→RLI update traffic (default:
    /// fail-fast, matching the shipped RLS).
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Installs a fault-injection hook (e.g. an `rls_faults::FaultPlan`)
    /// on every LRC→RLI update connection, so the whole topology runs
    /// under scripted chaos. Client connections made through
    /// [`TestDeployment::lrc_client`]/[`TestDeployment::rli_client`] stay
    /// clean — tests observe the damage through an undamaged window.
    pub fn fault_hook(mut self, hook: Arc<dyn FaultHook>) -> Self {
        self.fault_hook = Some(hook);
        self
    }

    /// Admission cap for every server in the deployment (connections past
    /// the cap are rejected with a retryable `Busy`). Small values turn
    /// the deployment into an overload harness.
    pub fn max_connections(mut self, n: usize) -> Self {
        self.max_connections = n;
        self
    }

    /// Request-handler pool size for every server (0 = auto-size).
    pub fn worker_threads(mut self, n: usize) -> Self {
        self.worker_threads = n;
        self
    }

    /// Number of LRC catalog shards (1 = the classic single engine).
    pub fn shards(mut self, n: usize) -> Self {
        self.shards = n;
        self
    }

    /// Number of RLI index shards on every RLI (1 = the classic
    /// single-lock index). Survives [`TestDeployment::restart_rli`].
    pub fn rli_shards(mut self, n: usize) -> Self {
        self.rli_shards = n;
        self
    }

    /// Starts the deployment.
    pub fn build(self) -> RlsResult<TestDeployment> {
        let mut rlis = Vec::with_capacity(self.rlis);
        for i in 0..self.rlis {
            let cfg = ServerConfig {
                name: format!("rli-{i}"),
                rli: Some(RliConfig {
                    profile: self.profile,
                    expire_timeout: self.expire_timeout,
                    auto_expire: self.auto,
                    shards: self.rli_shards,
                    ..Default::default()
                }),
                max_connections: self.max_connections,
                worker_threads: self.worker_threads,
                ..Default::default()
            };
            rlis.push(Server::start(cfg)?);
        }
        let mode = if self.bloom {
            UpdateMode::Bloom {
                interval: self.update_interval,
                params: BloomParams::PAPER,
            }
        } else if self.immediate {
            UpdateMode::Immediate {
                delta_interval: self.update_interval.min(Duration::from_secs(30)),
                delta_threshold: 100,
                full_interval: self.update_interval.max(Duration::from_secs(60)),
            }
        } else {
            UpdateMode::Full {
                interval: self.update_interval,
            }
        };
        let mut lrcs = Vec::with_capacity(self.lrcs);
        for i in 0..self.lrcs {
            let cfg = ServerConfig {
                name: format!("lrc-{i}"),
                lrc: Some(LrcConfig {
                    profile: self.profile,
                    wal_path: None,
                    update: UpdateConfig {
                        mode: mode.clone(),
                        chunk_size: self.chunk_size,
                        link: self.link,
                        ingress: self.ingress.clone(),
                        auto: self.auto,
                        retry: self.retry,
                        fault_hook: self.fault_hook.clone(),
                    },
                    group_commit: true,
                    shards: self.shards,
                }),
                max_connections: self.max_connections,
                worker_threads: self.worker_threads,
                ..Default::default()
            };
            let server = Server::start(cfg)?;
            // Register every RLI on this LRC's update list.
            let flags = if self.bloom { FLAG_BLOOM } else { 0 };
            {
                let lrc = server.lrc().expect("lrc role");
                for rli in &rlis {
                    lrc.catalog().add_rli(&rli.addr().to_string(), flags, &[])?;
                }
            }
            lrcs.push(server);
        }
        Ok(TestDeployment {
            lrcs,
            rlis,
            builder: self,
        })
    }
}

/// A running multi-server deployment on loopback.
pub struct TestDeployment {
    /// LRC servers.
    pub lrcs: Vec<Server>,
    /// RLI servers.
    pub rlis: Vec<Server>,
    /// The builder that produced this deployment (kept so crashed servers
    /// can be restarted with identical settings).
    builder: TestDeploymentBuilder,
}

impl TestDeployment {
    /// Starts building a deployment.
    pub fn builder() -> TestDeploymentBuilder {
        TestDeploymentBuilder::default()
    }

    /// Connects a client to LRC `i`.
    pub fn lrc_client(&self, i: usize) -> RlsResult<RlsClient> {
        RlsClient::connect(self.lrcs[i].addr(), &Dn::anonymous())
    }

    /// Connects a client to RLI `i`.
    pub fn rli_client(&self, i: usize) -> RlsResult<RlsClient> {
        RlsClient::connect(self.rlis[i].addr(), &Dn::anonymous())
    }

    /// Synchronously pushes one update cycle from every LRC.
    pub fn force_updates(&self) -> Vec<RlsResult<UpdateOutcome>> {
        let mut all = Vec::new();
        for lrc in &self.lrcs {
            match lrc.run_update_cycle() {
                Ok(outcomes) => all.extend(outcomes),
                Err(e) => all.push(Err(e)),
            }
        }
        all
    }

    /// Synchronously flushes immediate-mode deltas from every LRC.
    pub fn flush_deltas(&self) -> Vec<RlsResult<Vec<UpdateOutcome>>> {
        self.lrcs.iter().map(Server::flush_deltas).collect()
    }

    /// Synchronously captures one flight-recorder sample on every server
    /// (LRCs then RLIs), refreshing the derived gauges first — the
    /// deterministic stand-in for waiting out the sampler interval.
    pub fn force_samples(&self) {
        for s in self.lrcs.iter().chain(&self.rlis) {
            s.force_sample();
        }
    }

    /// Synchronously runs one expire pass on every RLI.
    pub fn force_expire(&self) -> RlsResult<u64> {
        let mut total = 0;
        for rli in &self.rlis {
            total += rli.run_expire()?;
        }
        Ok(total)
    }

    /// A standalone [`Updater`] for LRC `i` (benches that need per-update
    /// timing control).
    pub fn updater(&self, i: usize) -> Updater {
        let server = &self.lrcs[i];
        let lrc = server.lrc().expect("lrc role");
        let cfg = server
            .config()
            .lrc
            .as_ref()
            .expect("lrc config")
            .update
            .clone();
        let mut updater = Updater::new(
            server.name().to_owned(),
            server.config().dn.clone(),
            Arc::clone(lrc),
            &cfg,
        );
        updater.set_journal(Arc::clone(&server.state().journal));
        updater
    }

    /// Crashes RLI `i`: an abrupt stop that loses its in-memory index.
    /// Handler threads drop in-flight requests unanswered, so clients and
    /// updaters observe a dead peer, not a graceful drain.
    pub fn crash_rli(&self, i: usize) {
        self.rlis[i].shutdown();
    }

    /// Restarts a crashed RLI on its old address with an *empty* index —
    /// the paper's recovery model: an RLI "can be reconstructed from the
    /// periodic soft-state updates" rather than from durable state (§6).
    pub fn restart_rli(&mut self, i: usize) -> RlsResult<()> {
        let addr = self.rlis[i].addr();
        self.rlis[i].shutdown();
        let cfg = ServerConfig {
            name: format!("rli-{i}"),
            bind: addr,
            rli: Some(RliConfig {
                profile: self.builder.profile,
                expire_timeout: self.builder.expire_timeout,
                auto_expire: self.builder.auto,
                shards: self.builder.rli_shards,
                ..Default::default()
            }),
            ..Default::default()
        };
        self.rlis[i] = Server::start(cfg)?;
        Ok(())
    }

    /// Crashes LRC `i` (its catalog, journal and backlog vanish with it;
    /// its RLI entries will die by expiry — nothing un-registers them).
    pub fn crash_lrc(&self, i: usize) {
        self.lrcs[i].shutdown();
    }

    /// Shuts every server down.
    pub fn shutdown(&self) {
        for s in self.lrcs.iter().chain(&self.rlis) {
            s.shutdown();
        }
    }
}

impl Drop for TestDeployment {
    fn drop(&mut self) {
        self.shutdown();
    }
}
