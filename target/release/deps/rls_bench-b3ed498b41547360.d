/root/repo/target/release/deps/rls_bench-b3ed498b41547360.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/librls_bench-b3ed498b41547360.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/librls_bench-b3ed498b41547360.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
