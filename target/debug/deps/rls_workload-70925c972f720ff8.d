/root/repo/target/debug/deps/rls_workload-70925c972f720ff8.d: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/driver.rs crates/workload/src/namegen.rs crates/workload/src/stats.rs

/root/repo/target/debug/deps/librls_workload-70925c972f720ff8.rlib: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/driver.rs crates/workload/src/namegen.rs crates/workload/src/stats.rs

/root/repo/target/debug/deps/librls_workload-70925c972f720ff8.rmeta: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/driver.rs crates/workload/src/namegen.rs crates/workload/src/stats.rs

crates/workload/src/lib.rs:
crates/workload/src/dist.rs:
crates/workload/src/driver.rs:
crates/workload/src/namegen.rs:
crates/workload/src/stats.rs:
