/root/repo/target/debug/deps/chaos-a8d966c6042a2595.d: crates/core/tests/chaos.rs Cargo.toml

/root/repo/target/debug/deps/libchaos-a8d966c6042a2595.rmeta: crates/core/tests/chaos.rs Cargo.toml

crates/core/tests/chaos.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
