/root/repo/target/debug/deps/admission-3bb8ff38a9b16c29.d: crates/core/tests/admission.rs Cargo.toml

/root/repo/target/debug/deps/libadmission-3bb8ff38a9b16c29.rmeta: crates/core/tests/admission.rs Cargo.toml

crates/core/tests/admission.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
