//! Flight-recorder telemetry: a bounded ring of timestamped registry
//! snapshots plus the delta/rate math that turns two cumulative snapshots
//! into a per-window view.
//!
//! The paper's figures are all *time series* — sustained rates under load,
//! soft-state staleness windows — but a cumulative counter registry only
//! answers point-in-time questions. The server closes the gap by running a
//! background sampler that captures the whole registry into a
//! [`TelemetryRing`] every `telemetry_interval_ms`; the `StatsHistory` RPC
//! then streams the retained samples to clients, which derive rates and
//! per-window percentiles with [`counter_delta`] / [`histogram_delta`].
//!
//! All delta math is **counter-reset tolerant**: a cumulative value that
//! went backwards (server restart, registry wipe) is treated as a fresh
//! start rather than producing a bogus enormous delta.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::histogram::HistogramSnapshot;

/// Wall-clock microseconds since the Unix epoch (0 if the clock reads
/// before the epoch, which only a badly misconfigured host can produce).
pub fn unix_micros_now() -> u64 {
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_micros().min(u64::MAX as u128) as u64)
        .unwrap_or(0)
}

/// One captured snapshot of a server's whole metrics registry.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TelemetrySample {
    /// Monotonically increasing sample number, 1-based; never reused
    /// within a ring, so clients can poll with `since_seq` cursors.
    pub seq: u64,
    /// Wall-clock capture time, microseconds since the Unix epoch.
    pub at_unix_micros: u64,
    /// Monotonic capture time, microseconds since the ring was created.
    /// Rate windows are computed from this, not from the wall clock,
    /// so they survive NTP steps.
    pub uptime_micros: u64,
    /// Cumulative counters, `(name, value)` sorted by name.
    pub counters: Vec<(String, u64)>,
    /// Cumulative histograms, `(name, snapshot)` sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

struct RingInner {
    samples: VecDeque<TelemetrySample>,
    next_seq: u64,
    last_uptime: u64,
}

/// A bounded, timestamped ring of [`TelemetrySample`]s.
///
/// Pushing past capacity evicts the oldest sample; sequence numbers keep
/// growing, so a reader that polls `since(seq)` sees a gap (not stale
/// duplicates) when it falls behind. Uptime timestamps are forced
/// monotonic on insert — a sample can never appear to precede its
/// predecessor even if the caller's clock reads misordered.
pub struct TelemetryRing {
    inner: Mutex<RingInner>,
    capacity: usize,
    total: AtomicU64,
}

impl std::fmt::Debug for TelemetryRing {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TelemetryRing")
            .field("capacity", &self.capacity)
            .field("total", &self.total.load(Ordering::Relaxed))
            .finish()
    }
}

impl TelemetryRing {
    /// Create an empty ring retaining at most `capacity` samples
    /// (`capacity` is clamped to at least 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            inner: Mutex::new(RingInner {
                samples: VecDeque::with_capacity(capacity.min(64)),
                next_seq: 1,
                last_uptime: 0,
            }),
            capacity,
            total: AtomicU64::new(0),
        }
    }

    /// Push one captured registry snapshot; assigns and returns its `seq`.
    ///
    /// The ring owns sequence numbering and uptime monotonicity: the
    /// sample's `seq` and any backwards `uptime_micros` are overwritten.
    pub fn push(&self, mut sample: TelemetrySample) -> u64 {
        let mut inner = self.inner.lock().expect("telemetry ring poisoned");
        sample.seq = inner.next_seq;
        inner.next_seq += 1;
        sample.uptime_micros = sample.uptime_micros.max(inner.last_uptime);
        inner.last_uptime = sample.uptime_micros;
        let seq = sample.seq;
        inner.samples.push_back(sample);
        while inner.samples.len() > self.capacity {
            inner.samples.pop_front();
        }
        self.total.fetch_add(1, Ordering::Relaxed);
        seq
    }

    /// The most recent sample, if any.
    pub fn latest(&self) -> Option<TelemetrySample> {
        self.inner
            .lock()
            .expect("telemetry ring poisoned")
            .samples
            .back()
            .cloned()
    }

    /// Samples with `seq > since_seq`, oldest first, capped at `limit`
    /// (0 = no cap). A cursor that fell behind the ring simply misses the
    /// evicted window.
    pub fn since(&self, since_seq: u64, limit: usize) -> Vec<TelemetrySample> {
        let inner = self.inner.lock().expect("telemetry ring poisoned");
        let iter = inner.samples.iter().filter(|s| s.seq > since_seq);
        if limit == 0 {
            iter.cloned().collect()
        } else {
            // Keep the *newest* `limit` matches: a dashboard polling with a
            // stale cursor wants the current window, not ancient history.
            let matching = inner.samples.iter().filter(|s| s.seq > since_seq).count();
            iter.skip(matching.saturating_sub(limit)).cloned().collect()
        }
    }

    /// Number of samples currently retained.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("telemetry ring poisoned")
            .samples
            .len()
    }

    /// True when no samples have been captured yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum samples retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Lifetime count of samples pushed (including evicted ones).
    pub fn total_samples(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }
}

/// Counter delta across a window, tolerant of counter resets: a value that
/// went backwards (restart) counts from zero again, so the delta is the
/// new value itself rather than a wrapped giant.
pub fn counter_delta(prev: u64, cur: u64) -> u64 {
    if cur >= prev {
        cur - prev
    } else {
        cur
    }
}

/// Events-per-second rate from a window delta. An empty window (zero
/// duration) yields 0.0 rather than infinity.
pub fn rate_per_sec(delta: u64, window_micros: u64) -> f64 {
    if window_micros == 0 {
        0.0
    } else {
        delta as f64 * 1_000_000.0 / window_micros as f64
    }
}

/// Per-window histogram: bucket-wise difference of two cumulative
/// snapshots, from which window quantiles are read with the ordinary
/// [`HistogramSnapshot::quantile`] walk.
///
/// Reset tolerance: if the current snapshot's total count or any bucket
/// went backwards, the previous snapshot is from a dead incarnation and
/// the current cumulative snapshot *is* the window. `max_micros` keeps the
/// cumulative maximum (the per-window max is not recoverable from log2
/// buckets), so window quantiles clamp against the lifetime max — an
/// upper-bound estimate, exactly like the cumulative quantiles.
pub fn histogram_delta(prev: &HistogramSnapshot, cur: &HistogramSnapshot) -> HistogramSnapshot {
    let reset = cur.count < prev.count
        || cur.sum_micros < prev.sum_micros
        || cur
            .buckets
            .iter()
            .zip(prev.buckets.iter())
            .any(|(c, p)| c < p);
    if reset {
        return *cur;
    }
    let mut out = HistogramSnapshot {
        buckets: [0; crate::histogram::BUCKET_COUNT],
        count: cur.count - prev.count,
        sum_micros: cur.sum_micros - prev.sum_micros,
        max_micros: cur.max_micros,
    };
    for (i, o) in out.buckets.iter_mut().enumerate() {
        *o = cur.buckets[i] - prev.buckets[i];
    }
    out
}

/// Merge-join two name-sorted counter snapshots into per-name window
/// deltas (reset-tolerant). Names that appear only in `cur` — metrics born
/// inside the window — count from zero; names that vanished are dropped.
pub fn counter_window<'a>(
    prev: &[(String, u64)],
    cur: &'a [(String, u64)],
) -> Vec<(&'a str, u64)> {
    let mut out = Vec::with_capacity(cur.len());
    let mut pi = 0;
    for (name, value) in cur {
        while pi < prev.len() && prev[pi].0.as_str() < name.as_str() {
            pi += 1;
        }
        let prev_value = if pi < prev.len() && prev[pi].0 == *name {
            prev[pi].1
        } else {
            0
        };
        out.push((name.as_str(), counter_delta(prev_value, *value)));
    }
    out
}

/// Merge-join two name-sorted histogram snapshots into per-name window
/// histograms (see [`histogram_delta`]).
pub fn histogram_window<'a>(
    prev: &[(String, HistogramSnapshot)],
    cur: &'a [(String, HistogramSnapshot)],
) -> Vec<(&'a str, HistogramSnapshot)> {
    let empty = HistogramSnapshot::default();
    let mut out = Vec::with_capacity(cur.len());
    let mut pi = 0;
    for (name, snap) in cur {
        while pi < prev.len() && prev[pi].0.as_str() < name.as_str() {
            pi += 1;
        }
        let prev_snap = if pi < prev.len() && prev[pi].0 == *name {
            &prev[pi].1
        } else {
            &empty
        };
        out.push((name.as_str(), histogram_delta(prev_snap, snap)));
    }
    out
}

/// Worst-latency exemplar for one metric: remembers the slowest sample in
/// the current window together with the trace ID that produced it, so a
/// p99 spike in `rls-cli top` links straight to `rls-cli trace --id`.
///
/// Recording is lock-free (a CAS max race may momentarily pair the max
/// with a neighbouring sample's trace ID — harmless for an exemplar);
/// the telemetry sampler calls [`Exemplar::take`] once per window.
#[derive(Debug, Default)]
pub struct Exemplar {
    max_micros: AtomicU64,
    trace_id: AtomicU64,
}

impl Exemplar {
    /// Create an empty exemplar.
    pub fn new() -> Self {
        Self::default()
    }

    /// Offer one sample; keeps it only if it is the window's worst so far.
    pub fn offer(&self, micros: u64, trace_id: u64) {
        let mut cur = self.max_micros.load(Ordering::Relaxed);
        while micros > cur {
            match self.max_micros.compare_exchange_weak(
                cur,
                micros,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    self.trace_id.store(trace_id, Ordering::Relaxed);
                    break;
                }
                Err(actual) => cur = actual,
            }
        }
    }

    /// Current worst `(micros, trace_id)` without resetting, or `None` if
    /// the window is empty so far.
    pub fn peek(&self) -> Option<(u64, u64)> {
        let max = self.max_micros.load(Ordering::Relaxed);
        if max == 0 {
            None
        } else {
            Some((max, self.trace_id.load(Ordering::Relaxed)))
        }
    }

    /// Take the window's worst `(micros, trace_id)` and reset for the next
    /// window; `None` if nothing was recorded this window.
    pub fn take(&self) -> Option<(u64, u64)> {
        let max = self.max_micros.swap(0, Ordering::Relaxed);
        if max == 0 {
            None
        } else {
            Some((max, self.trace_id.load(Ordering::Relaxed)))
        }
    }
}
