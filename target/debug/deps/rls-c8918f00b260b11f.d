/root/repo/target/debug/deps/rls-c8918f00b260b11f.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/librls-c8918f00b260b11f.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
