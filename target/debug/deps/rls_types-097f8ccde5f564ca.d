/root/repo/target/debug/deps/rls_types-097f8ccde5f564ca.d: crates/types/src/lib.rs crates/types/src/attribute.rs crates/types/src/auth.rs crates/types/src/error.rs crates/types/src/names.rs crates/types/src/pattern.rs crates/types/src/time.rs

/root/repo/target/debug/deps/librls_types-097f8ccde5f564ca.rmeta: crates/types/src/lib.rs crates/types/src/attribute.rs crates/types/src/auth.rs crates/types/src/error.rs crates/types/src/names.rs crates/types/src/pattern.rs crates/types/src/time.rs

crates/types/src/lib.rs:
crates/types/src/attribute.rs:
crates/types/src/auth.rs:
crates/types/src/error.rs:
crates/types/src/names.rs:
crates/types/src/pattern.rs:
crates/types/src/time.rs:
