/root/repo/target/debug/deps/rls-8a5ca9ebbf182d28.d: src/lib.rs

/root/repo/target/debug/deps/librls-8a5ca9ebbf182d28.rmeta: src/lib.rs

src/lib.rs:
