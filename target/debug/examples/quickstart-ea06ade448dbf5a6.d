/root/repo/target/debug/examples/quickstart-ea06ade448dbf5a6.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-ea06ade448dbf5a6.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
