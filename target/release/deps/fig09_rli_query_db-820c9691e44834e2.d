/root/repo/target/release/deps/fig09_rli_query_db-820c9691e44834e2.d: crates/bench/benches/fig09_rli_query_db.rs

/root/repo/target/release/deps/fig09_rli_query_db-820c9691e44834e2: crates/bench/benches/fig09_rli_query_db.rs

crates/bench/benches/fig09_rli_query_db.rs:
