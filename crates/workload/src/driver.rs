//! The multi-threaded load driver: the paper's "multi-threaded client
//! program written in C that allows the user to specify the number of
//! threads that submit requests to a server and the types of operations to
//! perform" (§4).
//!
//! Each driver thread holds its own connection (threads of the original
//! client each drive independent RPCs). A barrier aligns thread start so
//! the measured window covers full concurrency.

use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Barrier;
use std::time::{Duration, Instant};

use rls_core::RlsClient;
use rls_net::{LinkProfile, SharedIngress};
use rls_proto::Request;
use rls_types::{Dn, RlsResult};

use crate::stats::{summarize, Summary};

/// The outcome of one driven load window.
#[derive(Clone, Copy, Debug)]
pub struct DriverReport {
    /// Operations that succeeded.
    pub ops: u64,
    /// Operations that returned an error.
    pub errors: u64,
    /// Wall-clock duration of the window.
    pub elapsed: Duration,
}

impl DriverReport {
    /// Successful operations per second.
    pub fn rate(&self) -> f64 {
        if self.elapsed.is_zero() {
            0.0
        } else {
            self.ops as f64 / self.elapsed.as_secs_f64()
        }
    }
}

/// Drives `threads` concurrent connections against `addr`, each performing
/// `ops_per_thread` operations produced by `op` (called with the thread
/// index and operation index).
///
/// `op` failures are counted, not propagated — the paper's driver keeps
/// going (a bulk trial must not die on one duplicate-mapping error).
pub fn drive<F>(
    addr: SocketAddr,
    link: LinkProfile,
    ingress: Option<SharedIngress>,
    threads: usize,
    ops_per_thread: usize,
    op: F,
) -> RlsResult<DriverReport>
where
    F: Fn(&mut RlsClient, usize, usize) -> RlsResult<()> + Sync,
{
    let barrier = Barrier::new(threads + 1);
    let ok = AtomicU64::new(0);
    let errs = AtomicU64::new(0);
    let dn = Dn::anonymous();
    let connect_err: parking_lot::Mutex<Option<rls_types::RlsError>> =
        parking_lot::Mutex::new(None);
    let t0 = std::thread::scope(|s| {
        // NOTE: t0 is captured *before* releasing the barrier. Capturing it
        // after would race: the OS may run every worker to completion
        // before the main thread is rescheduled, collapsing the measured
        // window to microseconds and inflating rates absurdly.
        for t in 0..threads {
            let barrier = &barrier;
            let ok = &ok;
            let errs = &errs;
            let op = &op;
            let dn = dn.clone();
            let ingress = ingress.clone();
            let connect_err = &connect_err;
            s.spawn(move || {
                let mut client = match RlsClient::connect_shaped(addr, &dn, link, ingress) {
                    Ok(c) => c,
                    Err(e) => {
                        *connect_err.lock() = Some(e);
                        barrier.wait();
                        return;
                    }
                };
                barrier.wait();
                for i in 0..ops_per_thread {
                    match op(&mut client, t, i) {
                        Ok(()) => {
                            ok.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(_) => {
                            errs.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
        let t0 = Instant::now();
        barrier.wait();
        t0
    });
    if let Some(e) = connect_err.lock().take() {
        return Err(e.context("driver thread failed to connect"));
    }
    // `t0` was captured at barrier release (inside the scope); the scope
    // returns only after every worker joined, so this spans the full window.
    let elapsed = t0.elapsed();
    Ok(DriverReport {
        ops: ok.load(Ordering::Relaxed),
        errors: errs.load(Ordering::Relaxed),
        elapsed,
    })
}

/// Like [`drive`], but each thread keeps up to `depth` requests in
/// flight over the pipelined RPC path instead of running lockstep.
/// `op` produces the request for `(thread, op_index)`; per-request
/// server errors are counted, not propagated, exactly as in [`drive`].
///
/// Depth 1 degenerates to lockstep (and stays byte-identical to the
/// legacy protocol on the wire), so the same driver measures both sides
/// of the fig06/fig07 comparison.
pub fn drive_pipelined<F>(
    addr: SocketAddr,
    link: LinkProfile,
    ingress: Option<SharedIngress>,
    threads: usize,
    ops_per_thread: usize,
    depth: usize,
    op: F,
) -> RlsResult<DriverReport>
where
    F: Fn(usize, usize) -> Request + Sync,
{
    let barrier = Barrier::new(threads + 1);
    let ok = AtomicU64::new(0);
    let errs = AtomicU64::new(0);
    let dn = Dn::anonymous();
    let connect_err: parking_lot::Mutex<Option<rls_types::RlsError>> =
        parking_lot::Mutex::new(None);
    let t0 = std::thread::scope(|s| {
        for t in 0..threads {
            let barrier = &barrier;
            let ok = &ok;
            let errs = &errs;
            let op = &op;
            let dn = dn.clone();
            let ingress = ingress.clone();
            let connect_err = &connect_err;
            s.spawn(move || {
                let mut client = match RlsClient::connect_shaped(addr, &dn, link, ingress) {
                    Ok(c) => c,
                    Err(e) => {
                        *connect_err.lock() = Some(e);
                        barrier.wait();
                        return;
                    }
                };
                if let Err(e) = client.set_pipeline_depth(depth) {
                    *connect_err.lock() = Some(e);
                    barrier.wait();
                    return;
                }
                barrier.wait();
                let tally = |results: Vec<(u64, RlsResult<_>)>| {
                    for (_, r) in results {
                        match r {
                            Ok(_) => {
                                ok.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(_) => {
                                errs.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    }
                };
                for i in 0..ops_per_thread {
                    // Submit blocks only when the window is full (resolving
                    // one response first), so the wire stays `depth` deep.
                    match client.pipeline_submit(&op(t, i)) {
                        Ok(_) => tally(client.pipeline_collect()),
                        Err(_) => {
                            errs.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                match client.pipeline_drain() {
                    Ok(results) => tally(results),
                    Err(_) => tally(client.pipeline_collect()),
                }
            });
        }
        let t0 = Instant::now();
        barrier.wait();
        t0
    });
    if let Some(e) = connect_err.lock().take() {
        return Err(e.context("driver thread failed to connect"));
    }
    let elapsed = t0.elapsed();
    Ok(DriverReport {
        ops: ok.load(Ordering::Relaxed),
        errors: errs.load(Ordering::Relaxed),
        elapsed,
    })
}

/// Runs a measured window several times and aggregates the rates — the
/// paper's "mean rate over those trials".
pub struct Trials {
    rates: Vec<f64>,
}

impl Trials {
    /// Empty collection.
    pub fn new() -> Self {
        Self { rates: Vec::new() }
    }

    /// Records one trial's report.
    pub fn push(&mut self, report: &DriverReport) {
        self.rates.push(report.rate());
    }

    /// Records a raw rate.
    pub fn push_rate(&mut self, rate: f64) {
        self.rates.push(rate);
    }

    /// Mean rate across trials.
    pub fn mean_rate(&self) -> f64 {
        self.summary().mean
    }

    /// Full summary.
    pub fn summary(&self) -> Summary {
        summarize(&self.rates)
    }
}

impl Default for Trials {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rls_core::TestDeployment;

    #[test]
    fn drive_measures_successes_and_errors() {
        let dep = TestDeployment::builder().lrcs(1).rlis(0).build().unwrap();
        let report = drive(
            dep.lrcs[0].addr(),
            LinkProfile::unshaped(),
            None,
            4,
            25,
            |client, t, i| client.create_mapping(&format!("lfn://d/{t}/{i}"), "pfn://x"),
        )
        .unwrap();
        assert_eq!(report.ops, 100);
        assert_eq!(report.errors, 0);
        assert!(report.rate() > 0.0);
        // Redriving the same creates fails every time.
        let report = drive(
            dep.lrcs[0].addr(),
            LinkProfile::unshaped(),
            None,
            4,
            25,
            |client, t, i| client.create_mapping(&format!("lfn://d/{t}/{i}"), "pfn://x"),
        )
        .unwrap();
        assert_eq!(report.ops, 0);
        assert_eq!(report.errors, 100);
    }

    #[test]
    fn drive_pipelined_measures_successes_and_errors() {
        use rls_types::Mapping;
        let dep = TestDeployment::builder().lrcs(1).rlis(0).build().unwrap();
        let mk = |t: usize, i: usize| {
            Request::Create(Mapping::new(format!("lfn://p/{t}/{i}"), "pfn://x").unwrap())
        };
        let report = drive_pipelined(
            dep.lrcs[0].addr(),
            LinkProfile::unshaped(),
            None,
            4,
            25,
            8,
            mk,
        )
        .unwrap();
        assert_eq!(report.ops, 100);
        assert_eq!(report.errors, 0);
        // Redriving the same creates fails per request — surfaced through
        // the pipelined completions, not as driver errors.
        let report = drive_pipelined(
            dep.lrcs[0].addr(),
            LinkProfile::unshaped(),
            None,
            4,
            25,
            8,
            mk,
        )
        .unwrap();
        assert_eq!(report.ops, 0);
        assert_eq!(report.errors, 100);
    }

    #[test]
    fn connect_failure_is_reported() {
        // Nothing listens on this port (bind+drop to find a free one).
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let res = drive(addr, LinkProfile::unshaped(), None, 2, 1, |c, _, _| c.ping());
        assert!(res.is_err());
    }

    #[test]
    fn trials_aggregate() {
        let mut t = Trials::new();
        t.push_rate(100.0);
        t.push_rate(200.0);
        t.push_rate(300.0);
        assert!((t.mean_rate() - 200.0).abs() < 1e-9);
        assert_eq!(t.summary().n, 3);
    }
}
