//! Fault-injection hook points for the transport layer.
//!
//! A [`FaultHook`] is consulted by [`crate::connect_with`] before dialing
//! and by [`crate::Conn`] around every frame send/receive. The production
//! path installs no hook (zero overhead beyond an `Option` check); the
//! `rls-faults` crate provides a deterministic, seeded implementation so
//! tests can script connection refusals, mid-frame disconnects, read
//! stalls and slow links with reproducible schedules.

use std::time::Duration;

/// What a [`FaultHook`] tells the transport to do at one hook point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultDecision {
    /// Proceed normally.
    Allow,
    /// Sleep this long, then proceed (slow-link emulation).
    Delay(Duration),
    /// Fail immediately, as if the peer refused the connection.
    Refuse,
    /// Write a truncated frame, then sever the connection (the peer sees
    /// wire-format corruption; the sender gets an I/O error). Only
    /// meaningful on the send path; elsewhere it behaves like [`Refuse`].
    DropMidFrame,
    /// Sleep this long (the operation appears hung), then fail with a
    /// timeout error — a read stall from the caller's point of view.
    Stall(Duration),
}

/// Transport fault-injection hook.
///
/// `target` is the canonical `ip:port` of the remote peer, so plans can
/// scope faults to one server or match any (`"*"`-style rules are the
/// hook implementation's business). Default methods allow everything;
/// implementations override only the sites they script.
///
/// Implementations must be `Send + Sync` (one hook is shared across every
/// connection of a deployment) and `Debug` (hooks ride inside config
/// structs that derive it).
pub trait FaultHook: Send + Sync + std::fmt::Debug {
    /// Consulted before a TCP connect to `target`.
    fn on_connect(&self, _target: &str) -> FaultDecision {
        FaultDecision::Allow
    }

    /// Consulted before sending a frame of `_wire_bytes` bytes (payload
    /// plus header) to `target`.
    fn on_send(&self, _target: &str, _wire_bytes: usize) -> FaultDecision {
        FaultDecision::Allow
    }

    /// Consulted before blocking to receive a frame from `target`.
    fn on_recv(&self, _target: &str) -> FaultDecision {
        FaultDecision::Allow
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug)]
    struct AllowAll;
    impl FaultHook for AllowAll {}

    #[test]
    fn default_hook_allows_everything() {
        let h = AllowAll;
        assert_eq!(h.on_connect("127.0.0.1:1"), FaultDecision::Allow);
        assert_eq!(h.on_send("127.0.0.1:1", 64), FaultDecision::Allow);
        assert_eq!(h.on_recv("127.0.0.1:1"), FaultDecision::Allow);
    }
}
