//! **Figure 7** — Operation rates for the native MySQL database: "we
//! imitated the same SQL operations performed by an LRC for query, add and
//! delete operations but made these requests directly to the MySQL back
//! end".
//!
//! Here that means driving the storage engine's `LrcDatabase` directly —
//! no RPC framing, no auth, no server thread hand-off. Compared with
//! Figure 6, the LRC should reach roughly 70–90 % of these native rates
//! (the paper's measured RLS overhead).

use std::sync::Arc;

use parking_lot::RwLock;
use rls_bench::{banner, header, row, start_lrc_sharded, Scale};
use rls_proto::Request;
use rls_storage::{BackendProfile, LrcDatabase};
use rls_types::Mapping;
use rls_workload::{drive_pipelined, preload_lrc, NameGen, Trials};

fn drive_native<F>(db: &Arc<RwLock<LrcDatabase>>, threads: usize, per_thread: usize, op: F) -> f64
where
    F: Fn(&RwLock<LrcDatabase>, usize, usize) + Sync,
{
    let barrier = std::sync::Barrier::new(threads + 1);
    let t0 = std::thread::scope(|s| {
        for t in 0..threads {
            let db = Arc::clone(db);
            let barrier = &barrier;
            let op = &op;
            s.spawn(move || {
                barrier.wait();
                for i in 0..per_thread {
                    op(&db, t, i);
                }
            });
        }
        // Capture before the release: see rls-workload::drive.
        let t0 = std::time::Instant::now();
        barrier.wait();
        t0
    });
    (threads * per_thread) as f64 / t0.elapsed().as_secs_f64()
}

fn main() {
    let scale = Scale::from_args();
    banner(
        "Figure 7",
        "native database op rates (engine driven directly, no RPC)",
        &scale,
    );
    let entries = scale.pick(20_000, 1_000_000);
    let ops_per_trial = scale.pick(2_000, 20_000) as usize;
    println!("    preload: {entries} mappings");
    header(&["clients", "threads", "query/s", "add/s", "delete/s"]);

    let db = Arc::new(RwLock::new(LrcDatabase::in_memory(
        BackendProfile::mysql_buffered(),
    )));
    let gen = NameGen::new("fig07");
    {
        let mut guard = db.write();
        for i in 0..entries {
            guard.create_mapping(&gen.mapping(i)).expect("preload");
        }
    }
    let tgen = NameGen::new("fig07-trial");

    for clients in 1..=10usize {
        let threads = clients * 10;
        let per_thread = ops_per_trial.div_ceil(threads);
        let (mut q, mut a, mut d) = (Trials::new(), Trials::new(), Trials::new());
        for trial in 0..scale.trials {
            let base = (trial * 10_000_000 + clients * 100_000) as u64;
            q.push_rate(drive_native(&db, threads, per_thread, |db, t, i| {
                let idx = (t as u64).wrapping_mul(6151).wrapping_add(i as u64) % entries;
                let _ = db.read().query_lfn(&gen.lfn(idx));
            }));
            a.push_rate(drive_native(&db, threads, per_thread, |db, t, i| {
                let idx = base + (t * per_thread + i) as u64;
                let m = Mapping::new(tgen.lfn(idx), tgen.pfn(0, idx)).unwrap();
                db.write().create_mapping(&m).expect("native add");
            }));
            d.push_rate(drive_native(&db, threads, per_thread, |db, t, i| {
                let idx = base + (t * per_thread + i) as u64;
                let m = Mapping::new(tgen.lfn(idx), tgen.pfn(0, idx)).unwrap();
                db.write().delete_mapping(&m).expect("native delete");
            }));
        }
        row(&[
            clients.to_string(),
            threads.to_string(),
            format!("{:.0}", q.mean_rate()),
            format!("{:.0}", a.mean_rate()),
            format!("{:.0}", d.mean_rate()),
        ]);
    }
    println!("\n    compare with Figure 6: LRC ≈70–90% of these native rates (RPC+auth overhead)");

    // --- The RPC gap, measured directly --------------------------------
    // The paper's fig06/fig07 ratio is the cost of the RPC path. Measure
    // it here in one place: native engine queries vs the same queries
    // over the wire, lockstep and with `--pipeline <depth>` requests in
    // flight. Pipelining hides the per-request round trip, so the
    // over-the-wire fraction of native should rise toward 1.
    let depth = if scale.pipeline > 1 { scale.pipeline } else { 8 };
    let threads = 10usize;
    let per_thread = ops_per_trial.div_ceil(threads);
    let mut native = Trials::new();
    for _ in 0..scale.trials {
        native.push_rate(drive_native(&db, threads, per_thread, |db, t, i| {
            let idx = (t as u64).wrapping_mul(6151).wrapping_add(i as u64) % entries;
            let _ = db.read().query_lfn(&gen.lfn(idx));
        }));
    }
    let server = start_lrc_sharded(BackendProfile::mysql_buffered(), scale.shards);
    let sgen = NameGen::new("fig07");
    preload_lrc(&server, &sgen, entries).expect("preload server");
    println!(
        "\n    RPC gap at {threads} threads (window depth {depth} vs lockstep):"
    );
    header(&["series", "query/s", "of native"]);
    row(&[
        "native".to_string(),
        format!("{:.0}", native.mean_rate()),
        "1.00".to_string(),
    ]);
    for (label, d) in [("rpc lockstep", 1usize), ("rpc pipelined", depth)] {
        let mut tr = Trials::new();
        for _ in 0..scale.trials {
            let report = drive_pipelined(
                server.addr(),
                rls_net::LinkProfile::unshaped(),
                None,
                threads,
                per_thread,
                d,
                |t, i| {
                    let idx = (t as u64).wrapping_mul(6151).wrapping_add(i as u64) % entries;
                    Request::QueryLfn(sgen.lfn(idx))
                },
            )
            .expect("rpc queries");
            assert_eq!(report.errors, 0);
            tr.push(&report);
        }
        row(&[
            label.to_string(),
            format!("{:.0}", tr.mean_rate()),
            format!("{:.2}", tr.mean_rate() / native.mean_rate().max(1e-9)),
        ]);
    }
    println!("    expected shape: pipelined fraction > lockstep fraction");
}
