//! The unified error type for the RLS stack.
//!
//! Every layer (storage, protocol, network, service) reports failures as an
//! [`RlsError`]: a machine-readable [`ErrorCode`] (stable across the wire —
//! it is what an RPC response carries) plus a human-readable message.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Convenient result alias used across the workspace.
pub type RlsResult<T> = Result<T, RlsError>;

/// Stable, wire-encodable error codes.
///
/// These correspond to the `globus_rls_client` error codes of the original
/// implementation (e.g. `GLOBUS_RLS_MAPPING_NEXIST`), renamed to Rust
/// conventions.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u16)]
pub enum ErrorCode {
    /// Catch-all internal failure.
    Internal = 1,
    /// Malformed logical or target name.
    InvalidName = 2,
    /// The requested mapping already exists (`create`/`add` collision).
    MappingExists = 3,
    /// The requested mapping does not exist.
    MappingNotFound = 4,
    /// The logical name does not exist in this catalog.
    LogicalNameNotFound = 5,
    /// The target name does not exist in this catalog.
    TargetNameNotFound = 6,
    /// The attribute definition already exists.
    AttributeExists = 7,
    /// No such attribute definition.
    AttributeNotFound = 8,
    /// Attribute value has the wrong type for its definition.
    AttributeTypeMismatch = 9,
    /// An attribute value for this object is already present.
    AttributeValueExists = 10,
    /// No attribute value recorded for this object.
    AttributeValueNotFound = 11,
    /// The caller is not authorized for the requested operation.
    PermissionDenied = 12,
    /// The request was syntactically invalid or used an unknown opcode.
    BadRequest = 13,
    /// The server is not configured for the requested role (e.g. an RLI
    /// query sent to a pure LRC).
    WrongRole = 14,
    /// Wire-format corruption or version mismatch.
    Protocol = 15,
    /// Underlying I/O failure (socket closed, connection refused, ...).
    Io = 16,
    /// Storage-engine failure (WAL corruption, schema violation, ...).
    Storage = 17,
    /// The server or client is shutting down.
    Shutdown = 18,
    /// An operation timed out.
    Timeout = 19,
    /// An invalid pattern (regex/glob) was supplied.
    InvalidPattern = 20,
    /// The named RLI is not known to this LRC.
    RliNotFound = 21,
    /// The named RLI is already on the update list.
    RliExists = 22,
    /// Soft-state update was rejected (e.g. partition mismatch).
    UpdateRejected = 23,
    /// Server resource limit reached (thread pool saturated, body too big).
    ResourceLimit = 24,
    /// The server is at its connection-admission limit. Unlike
    /// [`ResourceLimit`] this is transient by construction: the server
    /// rejected the connection *before* doing any work, and a client that
    /// backs off and retries is expected to get in once a slot frees.
    Busy = 25,
}

impl ErrorCode {
    /// Decodes a wire value back into a code.
    pub fn from_u16(v: u16) -> Option<Self> {
        use ErrorCode::*;
        Some(match v {
            1 => Internal,
            2 => InvalidName,
            3 => MappingExists,
            4 => MappingNotFound,
            5 => LogicalNameNotFound,
            6 => TargetNameNotFound,
            7 => AttributeExists,
            8 => AttributeNotFound,
            9 => AttributeTypeMismatch,
            10 => AttributeValueExists,
            11 => AttributeValueNotFound,
            12 => PermissionDenied,
            13 => BadRequest,
            14 => WrongRole,
            15 => Protocol,
            16 => Io,
            17 => Storage,
            18 => Shutdown,
            19 => Timeout,
            20 => InvalidPattern,
            21 => RliNotFound,
            22 => RliExists,
            23 => UpdateRejected,
            24 => ResourceLimit,
            25 => Busy,
            _ => return None,
        })
    }

    /// Encodes the code for the wire.
    #[inline]
    pub fn as_u16(self) -> u16 {
        self as u16
    }

    /// True for errors that indicate a caller mistake rather than a server
    /// or environment fault — useful for retry policies.
    pub fn is_client_error(self) -> bool {
        use ErrorCode::*;
        matches!(
            self,
            InvalidName
                | MappingExists
                | MappingNotFound
                | LogicalNameNotFound
                | TargetNameNotFound
                | AttributeExists
                | AttributeNotFound
                | AttributeTypeMismatch
                | AttributeValueExists
                | AttributeValueNotFound
                | PermissionDenied
                | BadRequest
                | WrongRole
                | InvalidPattern
                | RliNotFound
                | RliExists
        )
    }
}

impl fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// An RLS failure: a stable code plus context message.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct RlsError {
    code: ErrorCode,
    message: String,
}

impl RlsError {
    /// Creates an error with an explicit code and message.
    pub fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        Self {
            code,
            message: message.into(),
        }
    }

    /// The stable error code.
    #[inline]
    pub fn code(&self) -> ErrorCode {
        self.code
    }

    /// The human-readable message.
    #[inline]
    pub fn message(&self) -> &str {
        &self.message
    }

    /// Wraps the message with additional context, preserving the code.
    #[must_use]
    pub fn context(self, ctx: impl fmt::Display) -> Self {
        Self {
            code: self.code,
            message: format!("{ctx}: {}", self.message),
        }
    }

    /// Shorthand constructors for frequent codes.
    pub fn internal(msg: impl Into<String>) -> Self {
        Self::new(ErrorCode::Internal, msg)
    }
    /// Storage-layer failure.
    pub fn storage(msg: impl Into<String>) -> Self {
        Self::new(ErrorCode::Storage, msg)
    }
    /// Wire-protocol failure.
    pub fn protocol(msg: impl Into<String>) -> Self {
        Self::new(ErrorCode::Protocol, msg)
    }
    /// Malformed request.
    pub fn bad_request(msg: impl Into<String>) -> Self {
        Self::new(ErrorCode::BadRequest, msg)
    }
    /// Authorization failure.
    pub fn denied(msg: impl Into<String>) -> Self {
        Self::new(ErrorCode::PermissionDenied, msg)
    }
}

impl fmt::Display for RlsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}", self.code, self.message)
    }
}

impl std::error::Error for RlsError {}

impl From<std::io::Error> for RlsError {
    fn from(e: std::io::Error) -> Self {
        let code = if e.kind() == std::io::ErrorKind::TimedOut
            || e.kind() == std::io::ErrorKind::WouldBlock
        {
            ErrorCode::Timeout
        } else {
            ErrorCode::Io
        };
        Self::new(code, e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip_through_u16() {
        for v in 0..=64u16 {
            if let Some(code) = ErrorCode::from_u16(v) {
                assert_eq!(code.as_u16(), v);
            }
        }
        assert_eq!(ErrorCode::from_u16(0), None);
        assert_eq!(ErrorCode::from_u16(999), None);
    }

    #[test]
    fn display_includes_code_and_message() {
        let e = RlsError::new(ErrorCode::MappingExists, "lfn://x already mapped");
        let s = e.to_string();
        assert!(s.contains("MappingExists"));
        assert!(s.contains("lfn://x"));
    }

    #[test]
    fn context_preserves_code() {
        let e = RlsError::storage("wal torn").context("during replay");
        assert_eq!(e.code(), ErrorCode::Storage);
        assert!(e.message().starts_with("during replay:"));
    }

    #[test]
    fn io_error_conversion_maps_timeouts() {
        let timeout = std::io::Error::new(std::io::ErrorKind::TimedOut, "t");
        assert_eq!(RlsError::from(timeout).code(), ErrorCode::Timeout);
        let other = std::io::Error::new(std::io::ErrorKind::BrokenPipe, "b");
        assert_eq!(RlsError::from(other).code(), ErrorCode::Io);
    }

    #[test]
    fn client_error_classification() {
        assert!(ErrorCode::MappingNotFound.is_client_error());
        assert!(!ErrorCode::Io.is_client_error());
        assert!(!ErrorCode::Storage.is_client_error());
        // Busy is a server-side admission decision, not a caller mistake.
        assert!(!ErrorCode::Busy.is_client_error());
    }

    #[test]
    fn busy_round_trips() {
        assert_eq!(ErrorCode::Busy.as_u16(), 25);
        assert_eq!(ErrorCode::from_u16(25), Some(ErrorCode::Busy));
    }
}
