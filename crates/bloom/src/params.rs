//! Filter sizing policy.

use serde::{Deserialize, Serialize};

/// Bloom filter parameters.
///
/// Paper defaults (§3.4): *"Our implementation sets the Bloom filter size
/// based on the number of mappings in an LRC (e.g., 10 million bits for
/// approximately 1 million entries). We calculate three hash values for
/// every logical name. These parameters give a false positive rate of
/// approximately 1%."*
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BloomParams {
    /// Bits allocated per expected entry (paper: 10).
    pub bits_per_entry: u32,
    /// Number of hash functions (paper: 3).
    pub hashes: u32,
}

impl Default for BloomParams {
    fn default() -> Self {
        Self {
            bits_per_entry: 10,
            hashes: 3,
        }
    }
}

impl BloomParams {
    /// Paper-default parameters.
    pub const PAPER: Self = Self {
        bits_per_entry: 10,
        hashes: 3,
    };

    /// Parameters tuned for a target entry budget, picking the bit count for
    /// `capacity` expected entries. Filters are never smaller than 64 bits.
    pub fn bits_for_capacity(&self, capacity: u64) -> u64 {
        (capacity.saturating_mul(u64::from(self.bits_per_entry))).max(64)
    }

    /// Theoretical false-positive probability with `n` entries in `m` bits:
    /// `(1 - e^{-kn/m})^k`.
    pub fn theoretical_fpp(&self, n: u64, m: u64) -> f64 {
        if m == 0 {
            return 1.0;
        }
        let k = f64::from(self.hashes);
        let exponent = -k * n as f64 / m as f64;
        (1.0 - exponent.exp()).powf(k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let p = BloomParams::default();
        assert_eq!(p.bits_per_entry, 10);
        assert_eq!(p.hashes, 3);
        // 1M entries → 10M bits, as in the paper.
        assert_eq!(p.bits_for_capacity(1_000_000), 10_000_000);
    }

    #[test]
    fn paper_fpp_is_about_one_percent() {
        let p = BloomParams::PAPER;
        let fpp = p.theoretical_fpp(1_000_000, p.bits_for_capacity(1_000_000));
        assert!((0.005..0.03).contains(&fpp), "fpp={fpp}");
    }

    #[test]
    fn minimum_size_enforced() {
        assert_eq!(BloomParams::PAPER.bits_for_capacity(0), 64);
        assert_eq!(BloomParams::PAPER.bits_for_capacity(1), 64);
    }

    #[test]
    fn fpp_monotone_in_load() {
        let p = BloomParams::PAPER;
        let m = p.bits_for_capacity(1000);
        assert!(p.theoretical_fpp(100, m) < p.theoretical_fpp(1000, m));
        assert!(p.theoretical_fpp(1000, m) < p.theoretical_fpp(10_000, m));
    }

    #[test]
    fn degenerate_zero_bits() {
        assert_eq!(BloomParams::PAPER.theoretical_fpp(10, 0), 1.0);
    }
}
