/root/repo/target/debug/deps/rls_storage-add13e76e184ded6.d: crates/storage/src/lib.rs crates/storage/src/engine.rs crates/storage/src/index.rs crates/storage/src/lrcdb.rs crates/storage/src/predicate.rs crates/storage/src/profile.rs crates/storage/src/rlidb.rs crates/storage/src/schema.rs crates/storage/src/snapshot.rs crates/storage/src/stats.rs crates/storage/src/table.rs crates/storage/src/txn.rs crates/storage/src/value.rs crates/storage/src/wal.rs

/root/repo/target/debug/deps/rls_storage-add13e76e184ded6: crates/storage/src/lib.rs crates/storage/src/engine.rs crates/storage/src/index.rs crates/storage/src/lrcdb.rs crates/storage/src/predicate.rs crates/storage/src/profile.rs crates/storage/src/rlidb.rs crates/storage/src/schema.rs crates/storage/src/snapshot.rs crates/storage/src/stats.rs crates/storage/src/table.rs crates/storage/src/txn.rs crates/storage/src/value.rs crates/storage/src/wal.rs

crates/storage/src/lib.rs:
crates/storage/src/engine.rs:
crates/storage/src/index.rs:
crates/storage/src/lrcdb.rs:
crates/storage/src/predicate.rs:
crates/storage/src/profile.rs:
crates/storage/src/rlidb.rs:
crates/storage/src/schema.rs:
crates/storage/src/snapshot.rs:
crates/storage/src/stats.rs:
crates/storage/src/table.rs:
crates/storage/src/txn.rs:
crates/storage/src/value.rs:
crates/storage/src/wal.rs:
