//! Request-scoped tracing and structured logging for the RLS servers.
//!
//! This crate is dependency-free (like `rls-metrics`) and provides the two
//! observability primitives that PR 2 threads through the whole stack:
//!
//! * **Span journal** ([`TraceJournal`]): a bounded, lock-cheap ring buffer
//!   of finished [`SpanRecord`]s. Every server owns one journal; the
//!   dispatcher records an `op.*` span per request, the LRC records commit
//!   spans, the soft-state updater records `softstate.*` send spans, and the
//!   RLI records `rli.apply_*` / `rli.expire_sweep` spans. Spans carry a
//!   64-bit **trace ID** minted by the client (or by the server for
//!   server-originated work such as periodic updates and expire sweeps), so
//!   one ID links a client `add` to the delta that carried it to the RLI.
//! * **Structured logger** ([`Logger`], [`global`]): leveled `key=value`
//!   diagnostics with an optional JSON mode, replacing the ad-hoc
//!   `eprintln!` call sites. The process-wide logger defaults to
//!   [`Level::Warn`] so test output stays quiet; `rls-server` raises it from
//!   the config file (`log_level` / `log_format`).
//!
//! Trace IDs are minted deterministically — a per-connection seed mixed with
//! a request counter via [`mix64`] — so no wall-clock or RNG entropy is
//! needed and replays produce stable IDs. ID `0` is reserved to mean
//! "untraced"; wire frames without a trace envelope decode as ID 0 and the
//! server mints a local ID in that case.

mod log;
mod span;

pub use crate::log::{global, Level, LogFormat, Logger};
pub use crate::span::{SpanGuard, SpanRecord, TraceJournal, TraceQueryFilter};

/// `splitmix64` finalizer: a cheap, well-distributed 64-bit mixing function.
///
/// Used to derive trace IDs from (seed, counter) pairs without any entropy
/// source. `mix64(x) == 0` only for one input in 2^64, and callers that need
/// a nonzero ID (ID 0 means "untraced") should pass the result through
/// [`nonzero_id`].
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x ^= x >> 30;
    x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^= x >> 31;
    x
}

/// Maps the reserved "untraced" ID 0 to 1 so minted IDs are always valid.
pub fn nonzero_id(x: u64) -> u64 {
    if x == 0 {
        1
    } else {
        x
    }
}

#[cfg(test)]
mod mix_tests {
    use super::*;

    #[test]
    fn mix64_is_deterministic_and_spreads() {
        assert_eq!(mix64(42), mix64(42));
        assert_ne!(mix64(1), mix64(2));
        // Sequential inputs must not produce sequential outputs.
        let delta = mix64(2).wrapping_sub(mix64(1));
        assert_ne!(delta, 1);
    }

    #[test]
    fn nonzero_id_reserves_zero() {
        assert_eq!(nonzero_id(0), 1);
        assert_eq!(nonzero_id(7), 7);
    }
}
