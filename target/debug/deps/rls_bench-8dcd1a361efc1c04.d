/root/repo/target/debug/deps/rls_bench-8dcd1a361efc1c04.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/rls_bench-8dcd1a361efc1c04: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
