/root/repo/target/release/deps/fig09_rli_query_db-ba9040e497733585.d: crates/bench/benches/fig09_rli_query_db.rs

/root/repo/target/release/deps/fig09_rli_query_db-ba9040e497733585: crates/bench/benches/fig09_rli_query_db.rs

crates/bench/benches/fig09_rli_query_db.rs:
