/root/repo/target/debug/examples/wan_replication-01e9d82a68a233ed.d: examples/wan_replication.rs

/root/repo/target/debug/examples/libwan_replication-01e9d82a68a233ed.rmeta: examples/wan_replication.rs

examples/wan_replication.rs:
