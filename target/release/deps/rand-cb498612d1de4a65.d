/root/repo/target/release/deps/rand-cb498612d1de4a65.d: /tmp/vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-cb498612d1de4a65.rlib: /tmp/vendor/rand/src/lib.rs

/root/repo/target/release/deps/librand-cb498612d1de4a65.rmeta: /tmp/vendor/rand/src/lib.rs

/tmp/vendor/rand/src/lib.rs:
