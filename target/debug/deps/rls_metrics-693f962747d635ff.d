/root/repo/target/debug/deps/rls_metrics-693f962747d635ff.d: crates/metrics/src/lib.rs crates/metrics/src/histogram.rs crates/metrics/src/registry.rs

/root/repo/target/debug/deps/librls_metrics-693f962747d635ff.rmeta: crates/metrics/src/lib.rs crates/metrics/src/histogram.rs crates/metrics/src/registry.rs

crates/metrics/src/lib.rs:
crates/metrics/src/histogram.rs:
crates/metrics/src/registry.rs:
