/root/repo/target/debug/deps/rls_cli-c3abc3aec349f3eb.d: src/bin/rls-cli.rs Cargo.toml

/root/repo/target/debug/deps/librls_cli-c3abc3aec349f3eb.rmeta: src/bin/rls-cli.rs Cargo.toml

src/bin/rls-cli.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
