//! Client-side replica location: the application recovery loop of §3.2.
//!
//! > *"a query to an RLI may return stale information. In this case, a
//! > client may not find a mapping for the desired logical name when it
//! > queries an LRC. An application program must be sufficiently robust to
//! > recover from this situation and query for another replica of the
//! > logical name."*
//!
//! [`ReplicaLocator`] packages that robustness: it queries one or more
//! RLIs for candidate LRCs, resolves LRC identities to addresses through a
//! caller-supplied directory, and walks the candidates tolerating both
//! Bloom false positives and stale (expired-at-source) entries until it
//! finds live replicas.

use std::collections::HashMap;

use rls_net::{LinkProfile, SharedIngress};
use rls_types::{Dn, ErrorCode, RlsError, RlsResult};

use crate::client::RlsClient;

/// Resolves RLI-reported LRC identities (server names or addresses) to
/// dialable addresses.
pub trait LrcDirectory {
    /// The address for an LRC identity, if known.
    fn resolve(&self, lrc: &str) -> Option<String>;
}

/// A directory backed by an explicit map, falling back to treating the
/// identity itself as an address (the common case: LRCs advertise
/// `host:port`).
#[derive(Clone, Debug, Default)]
pub struct StaticDirectory {
    map: HashMap<String, String>,
}

impl StaticDirectory {
    /// Empty directory (identity == address).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a name → address entry.
    pub fn with(mut self, name: impl Into<String>, addr: impl Into<String>) -> Self {
        self.map.insert(name.into(), addr.into());
        self
    }
}

impl LrcDirectory for StaticDirectory {
    fn resolve(&self, lrc: &str) -> Option<String> {
        Some(self.map.get(lrc).cloned().unwrap_or_else(|| lrc.to_owned()))
    }
}

/// The outcome of a successful location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Located {
    /// The LRC that resolved the name.
    pub lrc: String,
    /// The replica target names it returned.
    pub replicas: Vec<String>,
    /// Candidates that turned out to be false positives or stale.
    pub misses: Vec<String>,
}

/// A replica-locating client: RLI tier first, then LRC candidates.
pub struct ReplicaLocator<D: LrcDirectory> {
    rli_addrs: Vec<String>,
    directory: D,
    dn: Dn,
    link: LinkProfile,
    ingress: Option<SharedIngress>,
    rli_conns: Vec<Option<RlsClient>>,
    lrc_conns: HashMap<String, RlsClient>,
}

impl<D: LrcDirectory> ReplicaLocator<D> {
    /// Builds a locator over the given RLI tier.
    pub fn new(rli_addrs: Vec<String>, directory: D, dn: Dn) -> Self {
        let n = rli_addrs.len();
        Self {
            rli_addrs,
            directory,
            dn,
            link: LinkProfile::unshaped(),
            ingress: None,
            rli_conns: (0..n).map(|_| None).collect(),
            lrc_conns: HashMap::new(),
        }
    }

    /// Applies link shaping to all connections the locator opens.
    #[must_use]
    pub fn with_link(mut self, link: LinkProfile, ingress: Option<SharedIngress>) -> Self {
        self.link = link;
        self.ingress = ingress;
        self
    }

    fn rli_conn(&mut self, i: usize) -> RlsResult<&mut RlsClient> {
        if self.rli_conns[i].is_none() {
            self.rli_conns[i] = Some(RlsClient::connect_shaped(
                self.rli_addrs[i].as_str(),
                &self.dn,
                self.link,
                self.ingress.clone(),
            )?);
        }
        Ok(self.rli_conns[i].as_mut().expect("just connected"))
    }

    fn lrc_conn(&mut self, addr: &str) -> RlsResult<&mut RlsClient> {
        if !self.lrc_conns.contains_key(addr) {
            let client = RlsClient::connect_shaped(
                addr,
                &self.dn,
                self.link,
                self.ingress.clone(),
            )?;
            self.lrc_conns.insert(addr.to_owned(), client);
        }
        Ok(self.lrc_conns.get_mut(addr).expect("just inserted"))
    }

    /// Locates live replicas of `lfn`.
    ///
    /// Tries each RLI until one returns candidates, then each candidate LRC
    /// until one resolves the name — recording candidates that turn out to
    /// be false positives or stale in [`Located::misses`]. Fails with
    /// [`ErrorCode::LogicalNameNotFound`] only after exhausting every
    /// candidate.
    pub fn locate(&mut self, lfn: &str) -> RlsResult<Located> {
        let mut last_err =
            RlsError::new(ErrorCode::LogicalNameNotFound, format!("{lfn:?}: no RLI answered"));
        for i in 0..self.rli_addrs.len() {
            let hits = match self.rli_conn(i).and_then(|c| c.rli_query_lfn(lfn)) {
                Ok(hits) => hits,
                Err(e) => {
                    // RLI down or name unknown there: try the next one.
                    self.rli_conns[i] = None;
                    last_err = e;
                    continue;
                }
            };
            let mut misses = Vec::new();
            for hit in hits {
                let Some(addr) = self.directory.resolve(&hit.lrc) else {
                    misses.push(hit.lrc);
                    continue;
                };
                match self.lrc_conn(&addr).and_then(|c| c.query_lfn(lfn)) {
                    Ok(replicas) if !replicas.is_empty() => {
                        return Ok(Located {
                            lrc: hit.lrc,
                            replicas,
                            misses,
                        })
                    }
                    Ok(_) => misses.push(hit.lrc),
                    Err(e) if e.code() == ErrorCode::LogicalNameNotFound => {
                        // Bloom false positive or stale entry: recover by
                        // trying the next candidate (§3.2).
                        misses.push(hit.lrc);
                    }
                    Err(_) => {
                        // Connection-level failure: drop the cached conn
                        // and treat as a miss.
                        self.lrc_conns.remove(&addr);
                        misses.push(hit.lrc);
                    }
                }
            }
            last_err = RlsError::new(
                ErrorCode::LogicalNameNotFound,
                format!("{lfn:?}: all {} candidate LRC(s) missed", misses.len()),
            );
        }
        Err(last_err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testkit::TestDeployment;

    #[test]
    fn locates_through_the_rli_tier() {
        let dep = TestDeployment::builder().lrcs(2).rlis(2).build().unwrap();
        let mut c1 = dep.lrc_client(1).unwrap();
        c1.create_mapping("lfn://loc/a", "pfn://site1/a").unwrap();
        for o in dep.force_updates() {
            o.unwrap();
        }
        let directory = StaticDirectory::new()
            .with("lrc-0", dep.lrcs[0].addr().to_string())
            .with("lrc-1", dep.lrcs[1].addr().to_string());
        let mut locator = ReplicaLocator::new(
            dep.rlis.iter().map(|r| r.addr().to_string()).collect(),
            directory,
            Dn::anonymous(),
        );
        let located = locator.locate("lfn://loc/a").unwrap();
        assert_eq!(located.lrc, "lrc-1");
        assert_eq!(located.replicas, vec!["pfn://site1/a"]);
        assert!(located.misses.is_empty());
        // Unknown names exhaust candidates.
        let err = locator.locate("lfn://loc/missing").unwrap_err();
        assert_eq!(err.code(), ErrorCode::LogicalNameNotFound);
    }

    #[test]
    fn recovers_from_stale_rli_entries() {
        let dep = TestDeployment::builder().lrcs(2).rlis(1).build().unwrap();
        let mut c0 = dep.lrc_client(0).unwrap();
        let mut c1 = dep.lrc_client(1).unwrap();
        c0.create_mapping("lfn://stale/x", "pfn://site0/x").unwrap();
        c1.create_mapping("lfn://stale/x", "pfn://site1/x").unwrap();
        for o in dep.force_updates() {
            o.unwrap();
        }
        // LRC 0 drops its replica after the update: the RLI is now stale.
        c0.delete_mapping("lfn://stale/x", "pfn://site0/x").unwrap();
        let directory = StaticDirectory::new()
            .with("lrc-0", dep.lrcs[0].addr().to_string())
            .with("lrc-1", dep.lrcs[1].addr().to_string());
        let mut locator = ReplicaLocator::new(
            vec![dep.rlis[0].addr().to_string()],
            directory,
            Dn::anonymous(),
        );
        let located = locator.locate("lfn://stale/x").unwrap();
        assert_eq!(located.lrc, "lrc-1");
        assert_eq!(located.replicas, vec!["pfn://site1/x"]);
        // If candidate order put lrc-0 first, it is recorded as a miss.
        assert!(located.misses.len() <= 1);
    }

    #[test]
    fn fails_over_to_the_second_rli() {
        let dep = TestDeployment::builder().lrcs(1).rlis(2).build().unwrap();
        let mut c = dep.lrc_client(0).unwrap();
        c.create_mapping("lfn://fo/a", "pfn://a").unwrap();
        for o in dep.force_updates() {
            o.unwrap();
        }
        // First RLI in the list is dead.
        let dead = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let directory = StaticDirectory::new().with("lrc-0", dep.lrcs[0].addr().to_string());
        let mut locator = ReplicaLocator::new(
            vec![dead, dep.rlis[1].addr().to_string()],
            directory,
            Dn::anonymous(),
        );
        let located = locator.locate("lfn://fo/a").unwrap();
        assert_eq!(located.replicas, vec!["pfn://a"]);
    }
}
