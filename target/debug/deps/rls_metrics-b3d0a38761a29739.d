/root/repo/target/debug/deps/rls_metrics-b3d0a38761a29739.d: crates/metrics/src/lib.rs crates/metrics/src/histogram.rs crates/metrics/src/registry.rs crates/metrics/src/telemetry.rs Cargo.toml

/root/repo/target/debug/deps/librls_metrics-b3d0a38761a29739.rmeta: crates/metrics/src/lib.rs crates/metrics/src/histogram.rs crates/metrics/src/registry.rs crates/metrics/src/telemetry.rs Cargo.toml

crates/metrics/src/lib.rs:
crates/metrics/src/histogram.rs:
crates/metrics/src/registry.rs:
crates/metrics/src/telemetry.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
