/root/repo/target/debug/deps/fig04_lrc_add_flush-16694ae4e5679f5a.d: crates/bench/benches/fig04_lrc_add_flush.rs

/root/repo/target/debug/deps/libfig04_lrc_add_flush-16694ae4e5679f5a.rmeta: crates/bench/benches/fig04_lrc_add_flush.rs

crates/bench/benches/fig04_lrc_add_flush.rs:
