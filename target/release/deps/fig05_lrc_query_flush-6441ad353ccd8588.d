/root/repo/target/release/deps/fig05_lrc_query_flush-6441ad353ccd8588.d: crates/bench/benches/fig05_lrc_query_flush.rs

/root/repo/target/release/deps/fig05_lrc_query_flush-6441ad353ccd8588: crates/bench/benches/fig05_lrc_query_flush.rs

crates/bench/benches/fig05_lrc_query_flush.rs:
