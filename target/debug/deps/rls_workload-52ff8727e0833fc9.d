/root/repo/target/debug/deps/rls_workload-52ff8727e0833fc9.d: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/driver.rs crates/workload/src/namegen.rs crates/workload/src/stats.rs

/root/repo/target/debug/deps/librls_workload-52ff8727e0833fc9.rmeta: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/driver.rs crates/workload/src/namegen.rs crates/workload/src/stats.rs

crates/workload/src/lib.rs:
crates/workload/src/dist.rs:
crates/workload/src/driver.rs:
crates/workload/src/namegen.rs:
crates/workload/src/stats.rs:
