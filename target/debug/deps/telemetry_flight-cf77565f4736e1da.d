/root/repo/target/debug/deps/telemetry_flight-cf77565f4736e1da.d: crates/core/tests/telemetry_flight.rs

/root/repo/target/debug/deps/libtelemetry_flight-cf77565f4736e1da.rmeta: crates/core/tests/telemetry_flight.rs

crates/core/tests/telemetry_flight.rs:
