/root/repo/target/debug/deps/fig13_bloom_wan_scaling-9a19c9bfb8b6b6c6.d: crates/bench/benches/fig13_bloom_wan_scaling.rs

/root/repo/target/debug/deps/fig13_bloom_wan_scaling-9a19c9bfb8b6b6c6: crates/bench/benches/fig13_bloom_wan_scaling.rs

crates/bench/benches/fig13_bloom_wan_scaling.rs:
