//! # `rls-faults`
//!
//! Deterministic, seeded fault-injection plans for the RLS transport.
//!
//! The paper's evaluation (§6) leans on soft state precisely because
//! servers fail: an RLI that crashes loses its index and is rebuilt from
//! the next round of LRC updates. This crate makes that story *testable*:
//! a [`FaultPlan`] is a scripted schedule of transport faults — connection
//! refusals, mid-frame disconnects, read stalls, slow links — that hooks
//! into `rls-net` via the [`FaultHook`] trait. Every decision the plan
//! makes is a pure function of its seed and the sequence of hook events,
//! so a failing chaos test replays identically from its seed.
//!
//! The plan does not know about servers or topologies; crash/restart of a
//! whole server is orchestrated one level up (the `rls-core` testkit's
//! `crash_rli`/`restart_rli`), while this crate covers everything that
//! happens *on the wire*.
//!
//! ```
//! use rls_faults::FaultPlan;
//! use rls_net::{FaultDecision, FaultHook};
//! use std::time::Duration;
//!
//! // Refuse the first two connects to any target, then stall the third
//! // read for 5 ms; everything afterwards flows normally.
//! let plan = FaultPlan::builder(0xC0FFEE)
//!     .refuse_connects("*", 2)
//!     .stall_recv("*", 0, Duration::from_millis(5))
//!     .build();
//! assert_eq!(plan.on_connect("127.0.0.1:9"), FaultDecision::Refuse);
//! assert_eq!(plan.on_connect("127.0.0.1:9"), FaultDecision::Refuse);
//! assert_eq!(plan.on_connect("127.0.0.1:9"), FaultDecision::Allow);
//! assert_eq!(plan.stats().refused(), 2);
//! ```

#![warn(missing_docs)]

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use rls_net::{splitmix64, FaultDecision, FaultHook};

/// Which hook point a rule applies to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Site {
    Connect,
    Send,
    Recv,
}

/// What a firing rule does.
#[derive(Clone, Copy, Debug)]
enum Action {
    Refuse,
    DropMidFrame,
    Stall(Duration),
    Delay(Duration),
    /// Fail the event with probability `ppm`/1_000_000, decided by the
    /// plan's seeded generator (deterministic given the event sequence).
    RefuseWithProb(u32),
}

/// One scripted rule plus its mutable progress counters.
#[derive(Debug)]
struct Rule {
    /// Target filter: canonical `ip:port`, or `"*"` for any peer.
    target: String,
    site: Site,
    /// Matching events to let through before the rule starts firing.
    skip: u64,
    /// Maximum times the rule fires (`u64::MAX` = forever).
    count: u64,
    action: Action,
    seen: u64,
    fired: u64,
}

impl Rule {
    fn matches(&self, site: Site, target: &str) -> bool {
        self.site == site && (self.target == "*" || self.target == target)
    }
}

/// Counters of faults actually injected, so tests can assert the script
/// fired (a chaos test whose faults never trigger proves nothing).
#[derive(Debug, Default)]
pub struct FaultStats {
    refused: AtomicU64,
    dropped: AtomicU64,
    stalled: AtomicU64,
    delayed: AtomicU64,
}

impl FaultStats {
    /// Connects/sends refused outright.
    pub fn refused(&self) -> u64 {
        self.refused.load(Ordering::Relaxed)
    }

    /// Frames cut off mid-wire.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Operations stalled then timed out.
    pub fn stalled(&self) -> u64 {
        self.stalled.load(Ordering::Relaxed)
    }

    /// Operations delayed (slow link) but allowed through.
    pub fn delayed(&self) -> u64 {
        self.delayed.load(Ordering::Relaxed)
    }

    /// Total faults injected across all classes (delays included).
    pub fn total(&self) -> u64 {
        self.refused() + self.dropped() + self.stalled() + self.delayed()
    }

    fn note(&self, action: Action) {
        match action {
            Action::Refuse | Action::RefuseWithProb(_) => {
                self.refused.fetch_add(1, Ordering::Relaxed)
            }
            Action::DropMidFrame => self.dropped.fetch_add(1, Ordering::Relaxed),
            Action::Stall(_) => self.stalled.fetch_add(1, Ordering::Relaxed),
            Action::Delay(_) => self.delayed.fetch_add(1, Ordering::Relaxed),
        };
    }
}

/// Builder for a [`FaultPlan`]. Rules are evaluated in insertion order;
/// the first rule that fires for an event decides it.
#[derive(Debug)]
pub struct FaultPlanBuilder {
    seed: u64,
    rules: Vec<Rule>,
}

impl FaultPlanBuilder {
    fn rule(mut self, target: &str, site: Site, skip: u64, count: u64, action: Action) -> Self {
        self.rules.push(Rule {
            target: target.to_owned(),
            site,
            skip,
            count,
            action,
            seen: 0,
            fired: 0,
        });
        self
    }

    /// Refuse the first `n` connection attempts to `target` (`"*"` = any).
    pub fn refuse_connects(self, target: &str, n: u64) -> Self {
        self.rule(target, Site::Connect, 0, n, Action::Refuse)
    }

    /// Refuse each connect to `target` with probability `ppm`/1_000_000,
    /// decided deterministically by the plan's seed.
    pub fn refuse_connects_prob(self, target: &str, ppm: u32) -> Self {
        self.rule(
            target,
            Site::Connect,
            0,
            u64::MAX,
            Action::RefuseWithProb(ppm),
        )
    }

    /// Cut the `nth` frame (0-based) sent to `target` off mid-wire and
    /// sever the connection.
    pub fn drop_mid_frame(self, target: &str, nth: u64) -> Self {
        self.rule(target, Site::Send, nth, 1, Action::DropMidFrame)
    }

    /// Stall the `nth` receive (0-based) from `target` for `dur`, then
    /// fail it with a timeout.
    pub fn stall_recv(self, target: &str, nth: u64, dur: Duration) -> Self {
        self.rule(target, Site::Recv, nth, 1, Action::Stall(dur))
    }

    /// Delay every frame to and from `target` by `dur` (slow link).
    pub fn slow_link(self, target: &str, dur: Duration) -> Self {
        self.rule(target, Site::Send, 0, u64::MAX, Action::Delay(dur))
            .rule(target, Site::Recv, 0, u64::MAX, Action::Delay(dur))
    }

    /// Finalizes the plan.
    pub fn build(self) -> FaultPlan {
        FaultPlan {
            seed: self.seed,
            state: Mutex::new(PlanState {
                rules: self.rules,
                rng: splitmix64(self.seed),
                steps: 0,
            }),
            stats: FaultStats::default(),
        }
    }
}

#[derive(Debug)]
struct PlanState {
    rules: Vec<Rule>,
    rng: u64,
    steps: u64,
}

/// A deterministic, seeded fault schedule implementing [`FaultHook`].
///
/// Share one plan (behind an `Arc`) across a whole deployment: the
/// `rls-core` testkit installs it on every LRC→RLI update connection, so
/// a single script choreographs faults topology-wide. Decisions depend
/// only on the seed and the order of hook events — single-threaded test
/// drivers replay bit-identically.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    state: Mutex<PlanState>,
    stats: FaultStats,
}

impl FaultPlan {
    /// Starts building a plan with the given seed.
    pub fn builder(seed: u64) -> FaultPlanBuilder {
        FaultPlanBuilder {
            seed,
            rules: Vec::new(),
        }
    }

    /// A plan with no rules: allows everything (useful as a control arm).
    pub fn quiet(seed: u64) -> FaultPlan {
        Self::builder(seed).build()
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Counters of faults injected so far.
    pub fn stats(&self) -> &FaultStats {
        &self.stats
    }

    /// A deterministic value derived from the seed and a label — for test
    /// drivers that need seeded choices *outside* the wire (e.g. "crash
    /// the RLI after step N"): `derive("crash-step") % steps`.
    pub fn derive(&self, label: &str) -> u64 {
        let mut h = self.seed;
        for b in label.bytes() {
            h = splitmix64(h ^ u64::from(b));
        }
        h
    }

    fn decide(&self, site: Site, target: &str) -> FaultDecision {
        let mut st = self.state.lock().expect("fault plan lock");
        st.steps += 1;
        // Advance the generator once per event so probabilistic rules stay
        // aligned with the event sequence regardless of rule order.
        st.rng = splitmix64(st.rng);
        let draw = st.rng;
        for rule in &mut st.rules {
            if !rule.matches(site, target) {
                continue;
            }
            let idx = rule.seen;
            rule.seen += 1;
            if idx < rule.skip || rule.fired >= rule.count {
                continue;
            }
            let fire = match rule.action {
                Action::RefuseWithProb(ppm) => (draw % 1_000_000) < u64::from(ppm),
                _ => true,
            };
            if !fire {
                continue;
            }
            rule.fired += 1;
            self.stats.note(rule.action);
            return match rule.action {
                Action::Refuse | Action::RefuseWithProb(_) => FaultDecision::Refuse,
                Action::DropMidFrame => FaultDecision::DropMidFrame,
                Action::Stall(d) => FaultDecision::Stall(d),
                Action::Delay(d) => FaultDecision::Delay(d),
            };
        }
        FaultDecision::Allow
    }
}

impl FaultHook for FaultPlan {
    fn on_connect(&self, target: &str) -> FaultDecision {
        self.decide(Site::Connect, target)
    }

    fn on_send(&self, target: &str, _wire_bytes: usize) -> FaultDecision {
        self.decide(Site::Send, target)
    }

    fn on_recv(&self, target: &str) -> FaultDecision {
        self.decide(Site::Recv, target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn refusals_fire_then_clear() {
        let plan = FaultPlan::builder(1).refuse_connects("*", 2).build();
        assert_eq!(plan.on_connect("a:1"), FaultDecision::Refuse);
        assert_eq!(plan.on_connect("b:2"), FaultDecision::Refuse);
        assert_eq!(plan.on_connect("a:1"), FaultDecision::Allow);
        assert_eq!(plan.stats().refused(), 2);
        assert_eq!(plan.stats().total(), 2);
    }

    #[test]
    fn target_scoping() {
        let plan = FaultPlan::builder(1).refuse_connects("a:1", 10).build();
        assert_eq!(plan.on_connect("b:2"), FaultDecision::Allow);
        assert_eq!(plan.on_connect("a:1"), FaultDecision::Refuse);
        assert_eq!(plan.stats().refused(), 1);
    }

    #[test]
    fn nth_send_dropped_once() {
        let plan = FaultPlan::builder(2).drop_mid_frame("*", 1).build();
        assert_eq!(plan.on_send("a:1", 10), FaultDecision::Allow); // 0th passes
        assert_eq!(plan.on_send("a:1", 10), FaultDecision::DropMidFrame); // 1st dropped
        assert_eq!(plan.on_send("a:1", 10), FaultDecision::Allow); // count exhausted
        assert_eq!(plan.stats().dropped(), 1);
    }

    #[test]
    fn stall_and_slow_link() {
        let d = Duration::from_millis(3);
        let plan = FaultPlan::builder(3)
            .stall_recv("*", 0, d)
            .slow_link("*", Duration::from_millis(1))
            .build();
        assert_eq!(plan.on_recv("a:1"), FaultDecision::Stall(d));
        // Stall exhausted: the slow-link rule takes over.
        assert_eq!(
            plan.on_recv("a:1"),
            FaultDecision::Delay(Duration::from_millis(1))
        );
        assert_eq!(
            plan.on_send("a:1", 5),
            FaultDecision::Delay(Duration::from_millis(1))
        );
        assert_eq!(plan.stats().stalled(), 1);
        assert_eq!(plan.stats().delayed(), 2);
    }

    /// The determinism contract: two plans built identically produce the
    /// same decision for every event of the same sequence.
    #[test]
    fn identical_seeds_replay_identically() {
        let build = || {
            FaultPlan::builder(0xDEADBEEF)
                .refuse_connects_prob("*", 500_000)
                .build()
        };
        let (a, b) = (build(), build());
        let decisions_a: Vec<_> = (0..64).map(|_| a.on_connect("x:1")).collect();
        let decisions_b: Vec<_> = (0..64).map(|_| b.on_connect("x:1")).collect();
        assert_eq!(decisions_a, decisions_b);
        // ~50% refusal probability must actually refuse some and allow some.
        assert!(a.stats().refused() > 0);
        assert!(a.stats().refused() < 64);
        // A different seed yields a different schedule.
        let c = FaultPlan::builder(0xFEEDFACE)
            .refuse_connects_prob("*", 500_000)
            .build();
        let decisions_c: Vec<_> = (0..64).map(|_| c.on_connect("x:1")).collect();
        assert_ne!(decisions_a, decisions_c);
    }

    #[test]
    fn derive_is_stable_per_label() {
        let plan = FaultPlan::quiet(7);
        assert_eq!(plan.derive("crash-step"), plan.derive("crash-step"));
        assert_ne!(plan.derive("crash-step"), plan.derive("other"));
        let plan2 = FaultPlan::quiet(8);
        assert_ne!(plan.derive("crash-step"), plan2.derive("crash-step"));
    }
}
