/root/repo/target/release/deps/fig12_uncompressed_updates-cb22809836d6ed46.d: crates/bench/benches/fig12_uncompressed_updates.rs

/root/repo/target/release/deps/fig12_uncompressed_updates-cb22809836d6ed46: crates/bench/benches/fig12_uncompressed_updates.rs

crates/bench/benches/fig12_uncompressed_updates.rs:
