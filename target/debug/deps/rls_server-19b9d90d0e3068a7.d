/root/repo/target/debug/deps/rls_server-19b9d90d0e3068a7.d: src/bin/rls-server.rs

/root/repo/target/debug/deps/rls_server-19b9d90d0e3068a7: src/bin/rls-server.rs

src/bin/rls-server.rs:
