/root/repo/target/debug/deps/rls_types-231bc50d63511a17.d: crates/types/src/lib.rs crates/types/src/attribute.rs crates/types/src/auth.rs crates/types/src/error.rs crates/types/src/names.rs crates/types/src/pattern.rs crates/types/src/time.rs

/root/repo/target/debug/deps/rls_types-231bc50d63511a17: crates/types/src/lib.rs crates/types/src/attribute.rs crates/types/src/auth.rs crates/types/src/error.rs crates/types/src/names.rs crates/types/src/pattern.rs crates/types/src/time.rs

crates/types/src/lib.rs:
crates/types/src/attribute.rs:
crates/types/src/auth.rs:
crates/types/src/error.rs:
crates/types/src/names.rs:
crates/types/src/pattern.rs:
crates/types/src/time.rs:
