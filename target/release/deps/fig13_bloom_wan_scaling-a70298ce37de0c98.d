/root/repo/target/release/deps/fig13_bloom_wan_scaling-a70298ce37de0c98.d: crates/bench/benches/fig13_bloom_wan_scaling.rs

/root/repo/target/release/deps/fig13_bloom_wan_scaling-a70298ce37de0c98: crates/bench/benches/fig13_bloom_wan_scaling.rs

crates/bench/benches/fig13_bloom_wan_scaling.rs:
