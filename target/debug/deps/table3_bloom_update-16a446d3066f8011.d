/root/repo/target/debug/deps/table3_bloom_update-16a446d3066f8011.d: crates/bench/benches/table3_bloom_update.rs

/root/repo/target/debug/deps/libtable3_bloom_update-16a446d3066f8011.rmeta: crates/bench/benches/table3_bloom_update.rs

crates/bench/benches/table3_bloom_update.rs:
