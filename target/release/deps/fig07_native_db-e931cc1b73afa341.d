/root/repo/target/release/deps/fig07_native_db-e931cc1b73afa341.d: crates/bench/benches/fig07_native_db.rs

/root/repo/target/release/deps/fig07_native_db-e931cc1b73afa341: crates/bench/benches/fig07_native_db.rs

crates/bench/benches/fig07_native_db.rs:
