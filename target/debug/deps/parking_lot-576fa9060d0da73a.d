/root/repo/target/debug/deps/parking_lot-576fa9060d0da73a.d: /tmp/vendor/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-576fa9060d0da73a.rlib: /tmp/vendor/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-576fa9060d0da73a.rmeta: /tmp/vendor/parking_lot/src/lib.rs

/tmp/vendor/parking_lot/src/lib.rs:
