/root/repo/target/debug/deps/fig12_uncompressed_updates-275160aab84b3930.d: crates/bench/benches/fig12_uncompressed_updates.rs Cargo.toml

/root/repo/target/debug/deps/libfig12_uncompressed_updates-275160aab84b3930.rmeta: crates/bench/benches/fig12_uncompressed_updates.rs Cargo.toml

crates/bench/benches/fig12_uncompressed_updates.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
