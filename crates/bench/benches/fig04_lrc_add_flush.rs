//! **Figure 4** — Add rates, LRC with 1 million entries and MySQL back end,
//! single client with multiple threads, database flush enabled and
//! disabled.
//!
//! Paper result: ~84 adds/s with the flush enabled (flat in thread count —
//! commits serialize on the synchronous log flush) vs >700 adds/s with it
//! disabled. Absolute rates here reflect the host, but the *shape* — a
//! large flush-enabled/flush-disabled gap for adds, flush-enabled flat
//! across threads — is the reproduced claim.
//!
//! Methodology (§4): server preloaded with a fixed number of mappings;
//! 3000 add operations per trial; mappings added in a trial are deleted
//! before the next so the database size stays constant.

use std::time::Duration;

use rls_bench::{banner, header, row, start_lrc, Scale};
use rls_storage::BackendProfile;
use rls_workload::{drive, preload_lrc, NameGen, Trials};

fn main() {
    let scale = Scale::from_args();
    banner(
        "Figure 4",
        "LRC add rates vs threads, flush enabled vs disabled",
        &scale,
    );
    let entries = scale.pick(20_000, 1_000_000);
    let adds_per_trial = scale.pick(1_000, 3_000) as usize;
    // Emulate the ~2003 disk the paper's server flushed to: a per-commit
    // sync costs a seek+rotation. Without this the host's NVMe fsync hides
    // the effect the paper measures.
    let disk = Duration::from_millis(2);

    println!("    preload: {entries} mappings; {adds_per_trial} adds per trial");
    header(&["threads", "adds/s flush+", "adds/s flush-"]);

    let configs = [
        BackendProfile::mysql_durable().with_sync_latency(disk),
        BackendProfile::mysql_buffered(),
    ];
    let mut results: Vec<Vec<f64>> = vec![Vec::new(), Vec::new()];
    for (ci, profile) in configs.iter().enumerate() {
        let server = start_lrc(*profile);
        let gen = NameGen::new("fig04");
        preload_lrc(&server, &gen, entries).expect("preload");
        let trial_gen = NameGen::new("fig04-trial");
        for threads in 1..=10usize {
            let per_thread = adds_per_trial.div_ceil(threads);
            let mut trials = Trials::new();
            for trial in 0..scale.trials {
                let base = (trial * 1_000_000) as u64;
                let report = drive(
                    server.addr(),
                    rls_net::LinkProfile::unshaped(),
                    None,
                    threads,
                    per_thread,
                    |c, t, i| {
                        let idx = base + (t * per_thread + i) as u64;
                        c.create_mapping(&trial_gen.lfn(idx), &trial_gen.pfn(0, idx))
                    },
                )
                .expect("drive adds");
                assert_eq!(report.errors, 0, "adds must not fail");
                trials.push(&report);
                // Untimed cleanup keeps the database size constant (§4).
                drive(
                    server.addr(),
                    rls_net::LinkProfile::unshaped(),
                    None,
                    threads,
                    per_thread,
                    |c, t, i| {
                        let idx = base + (t * per_thread + i) as u64;
                        c.delete_mapping(&trial_gen.lfn(idx), &trial_gen.pfn(0, idx))
                    },
                )
                .expect("cleanup");
            }
            results[ci].push(trials.mean_rate());
        }
    }
    for threads in 1..=10usize {
        row(&[
            threads.to_string(),
            format!("{:.0}", results[0][threads - 1]),
            format!("{:.0}", results[1][threads - 1]),
        ]);
    }
    let ratio = results[1].iter().sum::<f64>() / results[0].iter().sum::<f64>().max(1e-9);
    println!("\n    flush-disabled / flush-enabled add-rate ratio: {ratio:.1}x (paper: ~8x)");
}
