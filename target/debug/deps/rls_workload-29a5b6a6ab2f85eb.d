/root/repo/target/debug/deps/rls_workload-29a5b6a6ab2f85eb.d: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/driver.rs crates/workload/src/namegen.rs crates/workload/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/librls_workload-29a5b6a6ab2f85eb.rmeta: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/driver.rs crates/workload/src/namegen.rs crates/workload/src/stats.rs Cargo.toml

crates/workload/src/lib.rs:
crates/workload/src/dist.rs:
crates/workload/src/driver.rs:
crates/workload/src/namegen.rs:
crates/workload/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
