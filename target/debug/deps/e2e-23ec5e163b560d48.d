/root/repo/target/debug/deps/e2e-23ec5e163b560d48.d: crates/core/tests/e2e.rs Cargo.toml

/root/repo/target/debug/deps/libe2e-23ec5e163b560d48.rmeta: crates/core/tests/e2e.rs Cargo.toml

crates/core/tests/e2e.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
