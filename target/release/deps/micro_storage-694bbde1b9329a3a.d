/root/repo/target/release/deps/micro_storage-694bbde1b9329a3a.d: crates/bench/benches/micro_storage.rs

/root/repo/target/release/deps/micro_storage-694bbde1b9329a3a: crates/bench/benches/micro_storage.rs

crates/bench/benches/micro_storage.rs:
