/root/repo/target/debug/deps/fig08_pg_vacuum-a0cbab810be6e6bf.d: crates/bench/benches/fig08_pg_vacuum.rs

/root/repo/target/debug/deps/libfig08_pg_vacuum-a0cbab810be6e6bf.rmeta: crates/bench/benches/fig08_pg_vacuum.rs

crates/bench/benches/fig08_pg_vacuum.rs:
