/root/repo/target/debug/deps/fp_rate-75f0b8fb05e85322.d: crates/bloom/tests/fp_rate.rs

/root/repo/target/debug/deps/fp_rate-75f0b8fb05e85322: crates/bloom/tests/fp_rate.rs

crates/bloom/tests/fp_rate.rs:
