/root/repo/target/debug/deps/fig06_lrc_multiclient-26c3ebf1e76a5a14.d: crates/bench/benches/fig06_lrc_multiclient.rs

/root/repo/target/debug/deps/fig06_lrc_multiclient-26c3ebf1e76a5a14: crates/bench/benches/fig06_lrc_multiclient.rs

crates/bench/benches/fig06_lrc_multiclient.rs:
