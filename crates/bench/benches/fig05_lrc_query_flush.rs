//! **Figure 5** — Query rates, LRC with 1 million entries, MySQL back end,
//! single client with multiple threads, database flush enabled and
//! disabled.
//!
//! Paper result: ~1000–2000 queries/s, essentially identical whether the
//! flush is enabled or not — "query operations do not change the contents
//! of the database or generate transactions".

use std::time::Duration;

use rls_bench::{banner, header, row, start_lrc, Scale};
use rls_storage::BackendProfile;
use rls_workload::{drive, preload_lrc, NameGen, Trials};

fn main() {
    let scale = Scale::from_args();
    banner(
        "Figure 5",
        "LRC query rates vs threads, flush enabled vs disabled",
        &scale,
    );
    let entries = scale.pick(20_000, 1_000_000);
    let queries_per_trial = scale.pick(5_000, 20_000) as usize;
    let disk = Duration::from_millis(2);

    println!("    preload: {entries} mappings; {queries_per_trial} queries per trial");
    header(&["threads", "q/s flush+", "q/s flush-"]);

    let configs = [
        BackendProfile::mysql_durable().with_sync_latency(disk),
        BackendProfile::mysql_buffered(),
    ];
    let mut results: Vec<Vec<f64>> = vec![Vec::new(), Vec::new()];
    for (ci, profile) in configs.iter().enumerate() {
        let server = start_lrc(*profile);
        let gen = NameGen::new("fig05");
        preload_lrc(&server, &gen, entries).expect("preload");
        for threads in 1..=15usize {
            let per_thread = queries_per_trial.div_ceil(threads);
            let mut trials = Trials::new();
            for trial in 0..scale.trials {
                let report = drive(
                    server.addr(),
                    rls_net::LinkProfile::unshaped(),
                    None,
                    threads,
                    per_thread,
                    |c, t, i| {
                        // Pseudo-random walk over the preloaded population.
                        let idx = ((t + trial) as u64)
                            .wrapping_mul(7919)
                            .wrapping_add(i as u64)
                            % entries;
                        c.query_lfn(&gen.lfn(idx)).map(|_| ())
                    },
                )
                .expect("drive queries");
                assert_eq!(report.errors, 0, "queries must hit preloaded names");
                trials.push(&report);
            }
            results[ci].push(trials.mean_rate());
        }
    }
    for threads in 1..=15usize {
        row(&[
            threads.to_string(),
            format!("{:.0}", results[0][threads - 1]),
            format!("{:.0}", results[1][threads - 1]),
        ]);
    }
    let ratio = results[1].iter().sum::<f64>() / results[0].iter().sum::<f64>().max(1e-9);
    println!("\n    flush-disabled / flush-enabled query-rate ratio: {ratio:.2}x (paper: ~1x)");
}
