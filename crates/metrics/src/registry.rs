//! Named registry of counters and histograms.
//!
//! A [`Registry`] is a get-or-create map from metric name to instrument.
//! Server components hold a registry and ask for instruments by name at
//! the recording site; the `stats` RPC snapshots everything into sorted
//! `(name, value)` vectors, so neither the wire protocol nor the CLI needs
//! a compiled-in metric list.
//!
//! Lookup takes a short mutex on a `BTreeMap`; the returned handles are
//! `Arc`s over atomics, so hot paths may also cache a handle once and
//! record lock-free thereafter.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::histogram::{HistogramSnapshot, LatencyHistogram};
use crate::telemetry::Exemplar;

/// A named monotonic (or set-on-update gauge-style) `u64` counter.
///
/// Cloning is cheap — clones share the underlying atomic.
#[derive(Clone, Debug)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Overwrite the value (gauge-style use, e.g. queue depths).
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Get-or-create registry of named counters and latency histograms.
///
/// Metric names are dot-separated lowercase paths (`"op.create"`,
/// `"softstate.bloom_fpp_ppm"`); see `docs/OBSERVABILITY.md` in the repo
/// root for the full catalog and naming conventions.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<BTreeMap<String, Arc<AtomicU64>>>,
    histograms: Mutex<BTreeMap<String, Arc<LatencyHistogram>>>,
    exemplars: Mutex<BTreeMap<String, Arc<Exemplar>>>,
}

impl Registry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Look up (creating on first use) the counter named `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.counters.lock().expect("metrics registry poisoned");
        if let Some(c) = map.get(name) {
            return Counter(Arc::clone(c));
        }
        let c = Arc::new(AtomicU64::new(0));
        map.insert(name.to_string(), Arc::clone(&c));
        Counter(c)
    }

    /// Look up (creating on first use) the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Arc<LatencyHistogram> {
        let mut map = self.histograms.lock().expect("metrics registry poisoned");
        if let Some(h) = map.get(name) {
            return Arc::clone(h);
        }
        let h = Arc::new(LatencyHistogram::new());
        map.insert(name.to_string(), Arc::clone(&h));
        h
    }

    /// Look up (creating on first use) the worst-latency exemplar named
    /// `name` (conventionally the same name as the histogram it annotates).
    pub fn exemplar(&self, name: &str) -> Arc<Exemplar> {
        let mut map = self.exemplars.lock().expect("metrics registry poisoned");
        if let Some(e) = map.get(name) {
            return Arc::clone(e);
        }
        let e = Arc::new(Exemplar::new());
        map.insert(name.to_string(), Arc::clone(&e));
        e
    }

    /// Every exemplar as `(name, handle)`, sorted by name — the telemetry
    /// sampler walks this to roll windows.
    pub fn exemplar_handles(&self) -> Vec<(String, Arc<Exemplar>)> {
        self.exemplars
            .lock()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), Arc::clone(v)))
            .collect()
    }

    /// Snapshot every counter as `(name, value)`, sorted by name.
    pub fn counter_snapshot(&self) -> Vec<(String, u64)> {
        self.counters
            .lock()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed)))
            .collect()
    }

    /// Snapshot every histogram as `(name, snapshot)`, sorted by name.
    pub fn histogram_snapshot(&self) -> Vec<(String, HistogramSnapshot)> {
        self.histograms
            .lock()
            .expect("metrics registry poisoned")
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_are_get_or_create_and_shared() {
        let r = Registry::new();
        r.counter("a.hits").inc();
        r.counter("a.hits").add(2);
        assert_eq!(r.counter("a.hits").get(), 3);
        // A clone shares the same atomic.
        let c = r.counter("a.hits");
        let c2 = c.clone();
        c2.inc();
        assert_eq!(c.get(), 4);
    }

    #[test]
    fn gauge_style_set_overwrites() {
        let r = Registry::new();
        let g = r.counter("queue.depth");
        g.set(17);
        g.set(5);
        assert_eq!(g.get(), 5);
    }

    #[test]
    fn snapshots_are_sorted_by_name() {
        let r = Registry::new();
        r.counter("zeta").inc();
        r.counter("alpha").add(2);
        r.histogram("z.lat").record_micros(10);
        r.histogram("a.lat").record_micros(20);
        let counters = r.counter_snapshot();
        assert_eq!(
            counters,
            vec![("alpha".to_string(), 2), ("zeta".to_string(), 1)]
        );
        let hists = r.histogram_snapshot();
        assert_eq!(hists.len(), 2);
        assert_eq!(hists[0].0, "a.lat");
        assert_eq!(hists[1].0, "z.lat");
        assert_eq!(hists[0].1.count, 1);
    }

    #[test]
    fn histogram_handles_share_state() {
        let r = Registry::new();
        let h = r.histogram("op.query");
        h.record_micros(50);
        r.histogram("op.query").record_micros(70);
        let snap = &r.histogram_snapshot()[0];
        assert_eq!(snap.1.count, 2);
        assert_eq!(snap.1.max_micros, 70);
    }

    #[test]
    fn empty_registry_snapshots_are_empty() {
        let r = Registry::new();
        assert!(r.counter_snapshot().is_empty());
        assert!(r.histogram_snapshot().is_empty());
    }
}
