/root/repo/target/debug/deps/admission-2f8b9b06c9513263.d: crates/core/tests/admission.rs

/root/repo/target/debug/deps/admission-2f8b9b06c9513263: crates/core/tests/admission.rs

crates/core/tests/admission.rs:
