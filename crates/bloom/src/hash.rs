//! Hash functions for Bloom filters.
//!
//! The classic *double hashing* scheme of Kirsch & Mitzenmacher: derive two
//! independent 64-bit hashes `h1`, `h2` of the key, then use
//! `g_i = h1 + i·h2 (mod m)` as the `i`-th probe. This costs one pass over
//! the key regardless of the number of hash functions, which matters because
//! filter generation over millions of names is a measured quantity in the
//! paper (Table 3, column 3).
//!
//! `h1` is FNV-1a; `h2` is FNV-1a finalized through a splitmix64 avalanche
//! with a different seed, which decorrelates it from `h1` sufficiently for
//! Bloom-filter purposes (validated by the false-positive property tests in
//! `filter.rs`).

/// FNV-1a 64-bit over a byte slice.
#[inline]
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// splitmix64 finalizer: a fast, high-quality 64-bit avalanche.
#[inline]
pub fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// The two base hashes used by double hashing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DoubleHasher {
    h1: u64,
    h2: u64,
}

impl DoubleHasher {
    /// Hashes a key once, producing both base hashes.
    #[inline]
    pub fn new(key: &[u8]) -> Self {
        let h1 = fnv1a_64(key);
        // Mix with a distinct seed so h2 is independent of h1 even for keys
        // that differ only in their final byte.
        let h2 = splitmix64(h1 ^ 0x51_7c_c1_b7_27_22_0a_95) | 1; // odd ⇒ full period mod 2^k
        Self { h1, h2 }
    }

    /// The `i`-th probe index in `[0, m)`.
    #[inline]
    pub fn index(&self, i: u32, m: u64) -> u64 {
        debug_assert!(m > 0);
        self.h1.wrapping_add(u64::from(i).wrapping_mul(self.h2)) % m
    }
}

/// Yields the `k` bit indexes for `key` in a filter of `m` bits.
#[inline]
pub fn bloom_indexes(key: &[u8], k: u32, m: u64) -> impl Iterator<Item = u64> {
    let h = DoubleHasher::new(key);
    (0..k).map(move |i| h.index(i, m))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn fnv_known_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn splitmix_avalanche() {
        // Single-bit input changes flip roughly half the output bits.
        let a = splitmix64(1);
        let b = splitmix64(2);
        let flipped = (a ^ b).count_ones();
        assert!((16..=48).contains(&flipped), "flipped={flipped}");
    }

    #[test]
    fn double_hasher_deterministic() {
        let a = DoubleHasher::new(b"lfn://x/file1");
        let b = DoubleHasher::new(b"lfn://x/file1");
        assert_eq!(a, b);
        assert_eq!(a.index(2, 1000), b.index(2, 1000));
    }

    #[test]
    fn h2_is_odd() {
        for i in 0..100u32 {
            let h = DoubleHasher::new(format!("key{i}").as_bytes());
            assert_eq!(h.h2 & 1, 1);
        }
    }

    #[test]
    fn indexes_within_bounds_and_spread() {
        let m = 997u64;
        let mut seen = HashSet::new();
        for i in 0..500u32 {
            for idx in bloom_indexes(format!("lfn://spread/{i}").as_bytes(), 3, m) {
                assert!(idx < m);
                seen.insert(idx);
            }
        }
        // 1500 probes into 997 slots should touch most of the table.
        assert!(seen.len() > 700, "coverage={}", seen.len());
    }

    #[test]
    fn similar_keys_get_different_probes() {
        let a: Vec<u64> = bloom_indexes(b"file0001", 3, 1 << 20).collect();
        let b: Vec<u64> = bloom_indexes(b"file0002", 3, 1 << 20).collect();
        assert_ne!(a, b);
    }
}
