/root/repo/target/debug/deps/telemetry_flight-a0c6caec7136f37d.d: crates/core/tests/telemetry_flight.rs

/root/repo/target/debug/deps/telemetry_flight-a0c6caec7136f37d: crates/core/tests/telemetry_flight.rs

crates/core/tests/telemetry_flight.rs:
