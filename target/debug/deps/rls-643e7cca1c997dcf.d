/root/repo/target/debug/deps/rls-643e7cca1c997dcf.d: src/lib.rs

/root/repo/target/debug/deps/rls-643e7cca1c997dcf: src/lib.rs

src/lib.rs:
