/root/repo/target/debug/deps/chaos-9350e69e154df36a.d: crates/core/tests/chaos.rs

/root/repo/target/debug/deps/chaos-9350e69e154df36a: crates/core/tests/chaos.rs

crates/core/tests/chaos.rs:
