/root/repo/target/debug/deps/micro_pattern-aba16be1e58e06d8.d: crates/bench/benches/micro_pattern.rs Cargo.toml

/root/repo/target/debug/deps/libmicro_pattern-aba16be1e58e06d8.rmeta: crates/bench/benches/micro_pattern.rs Cargo.toml

crates/bench/benches/micro_pattern.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
