/root/repo/target/release/deps/rls-06cc6dbf325105a1.d: src/lib.rs

/root/repo/target/release/deps/rls-06cc6dbf325105a1: src/lib.rs

src/lib.rs:
