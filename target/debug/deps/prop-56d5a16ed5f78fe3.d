/root/repo/target/debug/deps/prop-56d5a16ed5f78fe3.d: crates/bloom/tests/prop.rs Cargo.toml

/root/repo/target/debug/deps/libprop-56d5a16ed5f78fe3.rmeta: crates/bloom/tests/prop.rs Cargo.toml

crates/bloom/tests/prop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
