//! WAL crash-consistency fuzzing: arbitrary truncation and corruption of
//! the log file must yield a clean *prefix* of committed transactions —
//! never a panic, never a suffix, never interleaved garbage.

use proptest::prelude::*;

use rls_storage::wal::{Wal, WalOp};
use rls_storage::{FlushMode, Value};

fn tmp(tag: u64) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("rls-walfuzz");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("fuzz-{}-{tag:x}.wal", std::process::id()))
}

fn sample_txn(i: u64) -> Vec<WalOp> {
    vec![
        WalOp::Insert {
            table: (i % 3) as u32,
            row: vec![Value::Int(i as i64), Value::str(format!("name-{i}"))],
        },
        WalOp::Delete {
            table: (i % 3) as u32,
            row_id: i,
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Truncating the log anywhere yields a prefix of the written txns.
    #[test]
    fn truncation_yields_clean_prefix(
        n_txns in 1usize..20,
        cut_fraction in 0.0f64..1.0,
        seed in any::<u64>(),
    ) {
        let path = tmp(seed);
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open(&path, FlushMode::Buffered, None).unwrap();
            for i in 0..n_txns {
                wal.append_txn(&sample_txn(i as u64)).unwrap();
            }
            wal.sync().unwrap();
        }
        let full_len = std::fs::metadata(&path).unwrap().len();
        let cut = (full_len as f64 * cut_fraction) as u64;
        std::fs::OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(cut)
            .unwrap();
        let txns = Wal::replay(&path).unwrap();
        prop_assert!(txns.len() <= n_txns);
        for (i, txn) in txns.iter().enumerate() {
            prop_assert_eq!(txn, &sample_txn(i as u64), "txn {} differs", i);
        }
        let _ = std::fs::remove_file(&path);
    }

    /// Flipping bytes anywhere never panics; replayed records are always a
    /// prefix of the true sequence (corruption stops replay, it cannot
    /// fabricate or reorder transactions).
    #[test]
    fn corruption_never_fabricates(
        n_txns in 1usize..12,
        flips in prop::collection::vec((any::<prop::sample::Index>(), 1u8..255), 1..6),
        seed in any::<u64>(),
    ) {
        let path = tmp(seed.wrapping_add(0x9999));
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open(&path, FlushMode::Buffered, None).unwrap();
            for i in 0..n_txns {
                wal.append_txn(&sample_txn(i as u64)).unwrap();
            }
            wal.sync().unwrap();
        }
        let mut bytes = std::fs::read(&path).unwrap();
        for (idx, mask) in &flips {
            let i = idx.index(bytes.len());
            bytes[i] ^= mask;
        }
        std::fs::write(&path, &bytes).unwrap();
        if let Ok(txns) = Wal::replay(&path) {
            // Every replayed record must match the true prefix OR diverge
            // only at the very record where corruption struck, in which
            // case CRC must have caught anything before it.
            for (i, txn) in txns.iter().enumerate() {
                if txn != &sample_txn(i as u64) {
                    // A CRC collision is the only way to get here; with
                    // random single-byte flips it's effectively impossible.
                    prop_assert!(false, "replay fabricated txn {}", i);
                }
            }
        }
        let _ = std::fs::remove_file(&path);
    }

    /// Appending after recovery keeps the log coherent.
    #[test]
    fn append_after_replay(n_before in 1usize..10, n_after in 1usize..10, seed in any::<u64>()) {
        let path = tmp(seed.wrapping_add(0xABCDE));
        let _ = std::fs::remove_file(&path);
        {
            let mut wal = Wal::open(&path, FlushMode::Buffered, None).unwrap();
            for i in 0..n_before {
                wal.append_txn(&sample_txn(i as u64)).unwrap();
            }
            wal.sync().unwrap();
        }
        {
            let mut wal = Wal::open(&path, FlushMode::Buffered, None).unwrap();
            for i in 0..n_after {
                wal.append_txn(&sample_txn((n_before + i) as u64)).unwrap();
            }
            wal.sync().unwrap();
        }
        let txns = Wal::replay(&path).unwrap();
        prop_assert_eq!(txns.len(), n_before + n_after);
        for (i, txn) in txns.iter().enumerate() {
            prop_assert_eq!(txn, &sample_txn(i as u64));
        }
        let _ = std::fs::remove_file(&path);
    }
}
