/root/repo/target/debug/deps/rls-37d63b1026396d51.d: src/lib.rs

/root/repo/target/debug/deps/rls-37d63b1026396d51: src/lib.rs

src/lib.rs:
