//! Human-readable rendering of server statistics.
//!
//! Turns a [`ServerStatsWire`] snapshot (opcode 50) into the operator
//! report printed by `rls-cli stats`: catalog sizes, per-operation latency
//! quantiles (the live counterpart of the paper's Figures 4–6), soft-state
//! and storage histograms, and the labeled counter list. Also renders the
//! machine-readable JSON form (`rls-cli stats --json`), the span table
//! printed by `rls-cli trace`, and the flight-recorder views: the live
//! `rls-cli top` dashboard ([`render_top`]) and the `rls-cli history
//! --json` dump ([`format_history_json`]).

use rls_metrics::{
    counter_window, histogram_window, rate_per_sec, HistogramSnapshot, TelemetrySample,
};
use rls_proto::{ServerStatsWire, SpanWire, StatsHistoryWire};

/// Renders one latency value; the saturating bucket's upper bound is
/// `u64::MAX`, which we print as an open interval rather than the number.
fn fmt_micros(v: u64) -> String {
    if v == u64::MAX {
        ">=2^30".to_owned()
    } else {
        v.to_string()
    }
}

fn histogram_row(name: &str, h: &HistogramSnapshot) -> String {
    format!(
        "  {:<28} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
        name,
        h.count,
        // Saturating cast: a mean pinned at u64::MAX renders as the
        // open interval like the quantiles do.
        fmt_micros(h.mean_micros() as u64),
        fmt_micros(h.p50()),
        fmt_micros(h.p90()),
        fmt_micros(h.p99()),
        fmt_micros(h.max_micros),
    )
}

fn histogram_header(title: &str) -> String {
    format!(
        "{title}\n  {:<28} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
        "name", "count", "mean", "p50", "p90", "p99", "max"
    )
}

/// Formats a stats snapshot as a multi-line operator report.
///
/// Sections with no data are omitted, so a freshly started server prints
/// only the role/catalog summary.
pub fn format_stats_report(stats: &ServerStatsWire) -> String {
    let mut out = String::new();
    let roles = match (stats.is_lrc, stats.is_rli) {
        (true, true) => "LRC+RLI",
        (true, false) => "LRC",
        (false, true) => "RLI",
        (false, false) => "none",
    };
    out.push_str(&format!("roles: {roles}\n"));
    if stats.is_lrc {
        out.push_str(&format!(
            "lrc: {} lfns, {} mappings\n",
            stats.lrc_lfn_count, stats.lrc_mapping_count
        ));
    }
    if stats.is_rli {
        out.push_str(&format!(
            "rli: {} associations, {} bloom filters\n",
            stats.rli_association_count, stats.rli_bloom_filters
        ));
    }
    out.push_str(&format!(
        "totals: adds={} deletes={} queries={} updates_received={} expired={}\n",
        stats.adds, stats.deletes, stats.queries, stats.updates_received, stats.expired
    ));

    let (ops, other): (Vec<_>, Vec<_>) = stats
        .op_latencies
        .iter()
        .filter(|(_, h)| !h.is_empty())
        .partition(|(name, _)| name.starts_with("op."));
    if !ops.is_empty() {
        out.push('\n');
        out.push_str(&histogram_header("operation latencies (us):"));
        for (name, h) in &ops {
            out.push_str(&histogram_row(name, h));
        }
    }
    if !other.is_empty() {
        out.push('\n');
        out.push_str(&histogram_header("internal latencies (us):"));
        for (name, h) in &other {
            out.push_str(&histogram_row(name, h));
        }
    }
    let exemplars: Vec<(&str, u64)> = stats
        .counters
        .iter()
        .filter_map(|(n, v)| {
            n.strip_prefix("exemplar.")
                .and_then(|r| r.strip_suffix(".max_us"))
                .map(|op| (op, *v))
        })
        .collect();
    if !exemplars.is_empty() {
        out.push_str("\nworst-latency exemplars (last sampler window):\n");
        for (op, us) in exemplars {
            let trace = stats
                .counters
                .iter()
                .find(|(n, _)| n == &format!("exemplar.{op}.trace_id"))
                .map(|(_, v)| *v)
                .unwrap_or(0);
            out.push_str(&format!("  {op:<28} {us:>9}us  trace {trace:016x}\n"));
        }
    }
    if !stats.counters.is_empty() {
        out.push_str("\ncounters:\n");
        for (name, v) in &stats.counters {
            out.push_str(&format!("  {name:<40} {v}\n"));
        }
    }
    out
}

/// Options controlling [`render_top`].
#[derive(Clone, Debug)]
pub struct TopOptions {
    /// Emit ANSI colors on the staleness rows.
    pub color: bool,
    /// Per-LRC staleness above this renders as a warning (yellow).
    pub stale_warn_ms: u64,
    /// Per-LRC staleness above this renders as critical (red).
    pub stale_crit_ms: u64,
}

impl Default for TopOptions {
    fn default() -> Self {
        Self {
            color: true,
            stale_warn_ms: 10_000,
            stale_crit_ms: 60_000,
        }
    }
}

fn fmt_rate_bytes(per_sec: f64) -> String {
    if per_sec >= 1_048_576.0 {
        format!("{:.1}MiB", per_sec / 1_048_576.0)
    } else if per_sec >= 1024.0 {
        format!("{:.1}KiB", per_sec / 1024.0)
    } else {
        format!("{per_sec:.0}B")
    }
}

/// Renders one frame of the `rls-cli top` dashboard from the retained
/// sample window: per-window operation rates and percentiles (deltas of
/// the last two samples), worker-pool occupancy, net throughput, shard
/// imbalance, the per-LRC staleness plane with threshold coloring, and the
/// worst-latency exemplars. With a single sample the view is cumulative
/// (the whole uptime is the window).
pub fn render_top(window: &[TelemetrySample], interval_micros: u64, opts: &TopOptions) -> String {
    let Some(cur) = window.last() else {
        return "no telemetry samples yet (is the sampler enabled?)\n".to_owned();
    };
    let prev = window.len().checked_sub(2).map(|i| &window[i]);
    let window_micros = match prev {
        Some(p) => cur.uptime_micros.saturating_sub(p.uptime_micros),
        None => cur.uptime_micros,
    };
    let mut out = format!(
        "sample #{} | uptime {:.1}s | window {:.1}s | cadence {}ms\n",
        cur.seq,
        cur.uptime_micros as f64 / 1e6,
        window_micros as f64 / 1e6,
        interval_micros / 1000,
    );
    let counter_deltas: Vec<(&str, u64)> = match prev {
        Some(p) => counter_window(&p.counters, &cur.counters),
        None => cur.counters.iter().map(|(n, v)| (n.as_str(), *v)).collect(),
    };
    let find = |name: &str| {
        cur.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    };
    let delta = |name: &str| {
        counter_deltas
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    out.push_str(&format!(
        "workers {}/{} busy (hwm {}) | net {}/s in {}/s out | shard imbalance {}\n",
        find("server.workers_busy").unwrap_or(0),
        find("server.worker_threads").unwrap_or(0),
        find("server.workers_busy_hwm").unwrap_or(0),
        fmt_rate_bytes(rate_per_sec(delta("net.bytes_in"), window_micros)),
        fmt_rate_bytes(rate_per_sec(delta("net.bytes_out"), window_micros)),
        find("storage.shard.imbalance_ppm")
            .map(|v| format!("{v}ppm"))
            .unwrap_or_else(|| "-".to_owned()),
    ));
    let hist_deltas: Vec<(&str, HistogramSnapshot)> = match prev {
        Some(p) => histogram_window(&p.histograms, &cur.histograms),
        None => cur
            .histograms
            .iter()
            .map(|(n, h)| (n.as_str(), *h))
            .collect(),
    };
    let ops: Vec<&(&str, HistogramSnapshot)> = hist_deltas
        .iter()
        .filter(|(n, h)| n.starts_with("op.") && h.count > 0)
        .collect();
    if !ops.is_empty() {
        out.push_str(&format!(
            "\n  {:<24} {:>8} {:>9} {:>9} {:>9}  {}\n",
            "op (window)", "rate/s", "p50us", "p99us", "maxus", "worst trace"
        ));
        for (name, h) in ops {
            let worst = match (
                find(&format!("exemplar.{name}.max_us")),
                find(&format!("exemplar.{name}.trace_id")),
            ) {
                (Some(us), Some(id)) if id != 0 => format!("{us}us @{id:016x}"),
                _ => "-".to_owned(),
            };
            out.push_str(&format!(
                "  {:<24} {:>8.1} {:>9} {:>9} {:>9}  {}\n",
                name,
                rate_per_sec(h.count, window_micros),
                fmt_micros(h.p50()),
                fmt_micros(h.p99()),
                fmt_micros(h.max_micros),
                worst,
            ));
        }
    }
    let stale: Vec<(&str, u64)> = cur
        .counters
        .iter()
        .filter_map(|(n, v)| n.strip_prefix("rli.lrc.staleness_ms.").map(|lrc| (lrc, *v)))
        .collect();
    if !stale.is_empty() {
        out.push_str(&format!(
            "\n  {:<24} {:>10} {:>10} {:>11}\n",
            "lrc (staleness)", "age_ms", "lag_ms", "divergence"
        ));
        let opt = |v: Option<u64>| v.map(|v| v.to_string()).unwrap_or_else(|| "-".to_owned());
        for (lrc, age_ms) in stale {
            let row = format!(
                "  {:<24} {:>10} {:>10} {:>11}",
                lrc,
                age_ms,
                opt(find(&format!("rli.update_lag_ms.{lrc}"))),
                opt(find(&format!("rli.mapping_divergence.{lrc}"))),
            );
            if opts.color {
                let code = if age_ms >= opts.stale_crit_ms {
                    "\x1b[31m" // red
                } else if age_ms >= opts.stale_warn_ms {
                    "\x1b[33m" // yellow
                } else {
                    "\x1b[32m" // green
                };
                out.push_str(&format!("{code}{row}\x1b[0m\n"));
            } else {
                out.push_str(&row);
                out.push('\n');
            }
        }
    }
    out
}

/// Formats a `StatsHistory` report as one JSON object (`rls-cli history
/// --json`): the sampler configuration plus every retained sample with its
/// counters and non-empty histogram summaries, oldest first.
pub fn format_history_json(h: &StatsHistoryWire) -> String {
    let mut out = format!(
        "{{\"interval_micros\":{},\"ring_capacity\":{},\"samples_total\":{},\"samples\":[",
        h.interval_micros, h.ring_capacity, h.samples_total
    );
    for (i, s) in h.samples.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"seq\":{},\"at_unix_micros\":{},\"uptime_micros\":{},\"counters\":{{",
            s.seq, s.at_unix_micros, s.uptime_micros
        ));
        for (j, (name, v)) in s.counters.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{}\":{v}", json_escape(name)));
        }
        out.push_str("},\"histograms\":{");
        let mut first = true;
        for (name, hist) in &s.histograms {
            if hist.is_empty() {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\"{}\":{}", json_escape(name), json_histogram(hist)));
        }
        out.push_str("}}");
    }
    out.push_str("]}");
    out
}

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_histogram(h: &HistogramSnapshot) -> String {
    format!(
        "{{\"count\":{},\"mean_micros\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"max_micros\":{}}}",
        h.count,
        h.mean_micros() as u64,
        h.p50(),
        h.p90(),
        h.p99(),
        h.max_micros,
    )
}

/// Formats a stats snapshot as a single JSON object (`rls-cli stats
/// --json`). All latency values are raw microseconds; the saturating
/// bucket's `u64::MAX` is emitted verbatim so consumers can detect it.
pub fn format_stats_json(stats: &ServerStatsWire) -> String {
    let mut out = String::from("{");
    out.push_str(&format!(
        "\"is_lrc\":{},\"is_rli\":{},\"lrc_lfn_count\":{},\"lrc_mapping_count\":{},\
         \"rli_association_count\":{},\"rli_bloom_filters\":{},\"adds\":{},\"deletes\":{},\
         \"queries\":{},\"updates_received\":{},\"expired\":{}",
        stats.is_lrc,
        stats.is_rli,
        stats.lrc_lfn_count,
        stats.lrc_mapping_count,
        stats.rli_association_count,
        stats.rli_bloom_filters,
        stats.adds,
        stats.deletes,
        stats.queries,
        stats.updates_received,
        stats.expired,
    ));
    out.push_str(",\"op_latencies\":{");
    let mut first = true;
    for (name, h) in &stats.op_latencies {
        if h.is_empty() {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("\"{}\":{}", json_escape(name), json_histogram(h)));
    }
    out.push_str("},\"counters\":{");
    for (i, (name, v)) in stats.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{v}", json_escape(name)));
    }
    out.push_str("}}");
    out
}

/// Renders spans returned by a `TraceQuery` as the table printed by
/// `rls-cli trace`. Trace IDs print as 16-digit hex (the form clients
/// report); span/parent IDs are journal-local decimal.
pub fn format_trace_report(spans: &[SpanWire]) -> String {
    if spans.is_empty() {
        return "no spans matched\n".to_owned();
    }
    let mut out = format!(
        "{:<16} {:>8} {:>8} {:<24} {:>14} {:>10}  {:<4} {}\n",
        "trace", "span", "parent", "op", "start_us", "dur_us", "ok", "detail"
    );
    for s in spans {
        out.push_str(&format!(
            "{:016x} {:>8} {:>8} {:<24} {:>14} {:>10}  {:<4} {}\n",
            s.trace_id,
            s.span_id,
            s.parent_span,
            s.op,
            s.start_micros,
            s.duration_micros,
            if s.ok { "ok" } else { "ERR" },
            s.detail,
        ));
    }
    out.push_str(&format!("{} span(s)\n", spans.len()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rls_metrics::LatencyHistogram;

    fn snap(samples: &[u64]) -> HistogramSnapshot {
        let h = LatencyHistogram::new();
        for &s in samples {
            h.record_micros(s);
        }
        h.snapshot()
    }

    #[test]
    fn report_includes_quantiles_and_counters() {
        let stats = ServerStatsWire {
            is_lrc: true,
            is_rli: false,
            lrc_lfn_count: 10,
            lrc_mapping_count: 20,
            adds: 3,
            op_latencies: vec![
                ("op.create".into(), snap(&[5, 7, 900])),
                ("storage.query_lfn".into(), snap(&[2])),
                ("op.never_called".into(), HistogramSnapshot::default()),
            ],
            counters: vec![("lrc.engine.inserts".into(), 42)],
            ..ServerStatsWire::default()
        };
        let report = format_stats_report(&stats);
        assert!(report.contains("roles: LRC"));
        assert!(report.contains("lrc: 10 lfns, 20 mappings"));
        assert!(report.contains("operation latencies"));
        assert!(report.contains("op.create"));
        assert!(report.contains("internal latencies"));
        assert!(report.contains("storage.query_lfn"));
        assert!(report.contains("lrc.engine.inserts"));
        // Empty histograms are suppressed.
        assert!(!report.contains("op.never_called"));
        // p50 of [5, 7, 900] falls in the [4,7] bucket → 7.
        assert!(report.lines().any(|l| l.contains("op.create") && l.contains(" 7 ")));
    }

    #[test]
    fn empty_snapshot_is_compact() {
        let report = format_stats_report(&ServerStatsWire::default());
        assert!(report.contains("roles: none"));
        assert!(!report.contains("latencies"));
        assert!(!report.contains("counters:"));
    }

    #[test]
    fn json_report_is_machine_readable() {
        let stats = ServerStatsWire {
            is_lrc: true,
            lrc_lfn_count: 10,
            adds: 3,
            op_latencies: vec![
                ("op.create".into(), snap(&[5, 7, 900])),
                ("op.never_called".into(), HistogramSnapshot::default()),
            ],
            counters: vec![("lrc.engine.inserts".into(), 42)],
            ..ServerStatsWire::default()
        };
        let json = format_stats_json(&stats);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"is_lrc\":true"));
        assert!(json.contains("\"lrc_lfn_count\":10"));
        assert!(json.contains("\"op.create\":{\"count\":3"));
        assert!(json.contains("\"lrc.engine.inserts\":42"));
        // Empty histograms are suppressed, matching the text report.
        assert!(!json.contains("op.never_called"));
        // Balanced braces — a cheap structural sanity check with no JSON
        // parser in the dependency tree.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn json_escapes_metric_names() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("plain"), "plain");
    }

    #[test]
    fn trace_report_lists_spans() {
        let spans = vec![
            SpanWire {
                trace_id: 0xabc,
                span_id: 1,
                parent_span: 0,
                op: "op.create".into(),
                start_micros: 10,
                duration_micros: 250,
                ok: true,
                detail: String::new(),
            },
            SpanWire {
                trace_id: 0xabc,
                span_id: 2,
                parent_span: 1,
                op: "lrc.commit".into(),
                start_micros: 12,
                duration_micros: 200,
                ok: false,
                detail: "lfn0".into(),
            },
        ];
        let report = format_trace_report(&spans);
        assert!(report.contains("0000000000000abc"));
        assert!(report.contains("op.create"));
        assert!(report.contains("lrc.commit"));
        assert!(report.contains("ERR"));
        assert!(report.contains("lfn0"));
        assert!(report.contains("2 span(s)"));
        assert_eq!(format_trace_report(&[]), "no spans matched\n");
    }

    #[test]
    fn saturated_max_prints_open_interval() {
        let stats = ServerStatsWire {
            op_latencies: vec![("op.slow".into(), snap(&[u64::MAX]))],
            ..ServerStatsWire::default()
        };
        let report = format_stats_report(&stats);
        assert!(report.contains(">=2^30"));
    }

    #[test]
    fn stats_report_prints_exemplar_section() {
        let stats = ServerStatsWire {
            counters: vec![
                ("exemplar.op.create.max_us".into(), 950),
                ("exemplar.op.create.trace_id".into(), 0xdead_beef),
            ],
            ..ServerStatsWire::default()
        };
        let report = format_stats_report(&stats);
        assert!(report.contains("worst-latency exemplars"));
        assert!(report.contains("op.create"));
        assert!(report.contains("950us"));
        assert!(report.contains("00000000deadbeef"));
        // No exemplar counters → no section.
        assert!(!format_stats_report(&ServerStatsWire::default())
            .contains("worst-latency exemplars"));
    }

    fn sample(seq: u64, uptime_micros: u64) -> TelemetrySample {
        TelemetrySample {
            seq,
            at_unix_micros: 1_000_000 + uptime_micros,
            uptime_micros,
            counters: Vec::new(),
            histograms: Vec::new(),
        }
    }

    #[test]
    fn top_renders_window_rates_and_staleness_colors() {
        let mut a = sample(1, 1_000_000);
        a.counters = vec![
            ("net.bytes_in".into(), 1_000),
            ("op.query.count".into(), 0),
        ];
        a.histograms = vec![("op.query".into(), snap(&[10]))];
        let mut b = sample(2, 2_000_000);
        b.counters = vec![
            ("exemplar.op.query.max_us".into(), 400),
            ("exemplar.op.query.trace_id".into(), 0xfeed),
            ("net.bytes_in".into(), 3_048),
            ("rli.lrc.staleness_ms.lrc-cold".into(), 120_000),
            ("rli.lrc.staleness_ms.lrc-hot".into(), 5),
            ("rli.lrc.staleness_ms.lrc-warm".into(), 15_000),
            ("rli.mapping_divergence.lrc-hot".into(), 2),
            ("server.worker_threads".into(), 8),
            ("server.workers_busy".into(), 3),
            ("storage.shard.imbalance_ppm".into(), 1234),
        ];
        b.histograms = vec![("op.query".into(), snap(&[10, 100, 100, 400]))];
        let window = [a, b];
        let opts = TopOptions::default();
        let out = render_top(&window, 1_000_000, &opts);
        assert!(out.contains("sample #2"));
        assert!(out.contains("window 1.0s"));
        assert!(out.contains("cadence 1000ms"));
        assert!(out.contains("workers 3/8 busy"));
        assert!(out.contains("1234ppm"));
        // 3048-1000 = 2048 bytes over a 1s window.
        assert!(out.contains("2.0KiB/s in"));
        // op.query window delta: 4-1 = 3 events/s.
        assert!(out.lines().any(|l| l.contains("op.query") && l.contains("3.0")));
        assert!(out.contains("400us @000000000000feed"));
        // Threshold coloring: hot green, warm yellow, cold red.
        assert!(out.contains("\x1b[32m") && out.contains("lrc-hot"));
        assert!(out.contains("\x1b[33m") && out.contains("lrc-warm"));
        assert!(out.contains("\x1b[31m") && out.contains("lrc-cold"));
        // Missing lag gauge renders as "-", present divergence as a number.
        assert!(out.lines().any(|l| l.contains("lrc-hot") && l.contains('-') && l.contains('2')));

        let plain = render_top(
            &window,
            1_000_000,
            &TopOptions {
                color: false,
                ..TopOptions::default()
            },
        );
        assert!(!plain.contains('\x1b'));
    }

    #[test]
    fn top_with_one_sample_is_cumulative_and_empty_window_explains() {
        let mut only = sample(7, 2_000_000);
        only.histograms = vec![("op.add".into(), snap(&[50, 50]))];
        let out = render_top(std::slice::from_ref(&only), 500_000, &TopOptions::default());
        assert!(out.contains("sample #7"));
        assert!(out.contains("window 2.0s"));
        // Cumulative rate: 2 events over 2s uptime.
        assert!(out.lines().any(|l| l.contains("op.add") && l.contains("1.0")));
        assert!(render_top(&[], 500_000, &TopOptions::default()).contains("no telemetry samples"));
    }

    #[test]
    fn history_json_is_brace_balanced_and_skips_empty_histograms() {
        let mut s = sample(3, 42);
        s.counters = vec![("telemetry.samples".into(), 3)];
        s.histograms = vec![
            ("op.idle".into(), HistogramSnapshot::default()),
            ("op.query".into(), snap(&[9])),
        ];
        let wire = StatsHistoryWire {
            interval_micros: 1_000_000,
            ring_capacity: 512,
            samples_total: 3,
            samples: vec![s],
        };
        let json = format_history_json(&wire);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces in {json}"
        );
        assert!(json.contains("\"interval_micros\":1000000"));
        assert!(json.contains("\"samples_total\":3"));
        assert!(json.contains("\"seq\":3"));
        assert!(json.contains("\"telemetry.samples\":3"));
        assert!(json.contains("\"op.query\""));
        assert!(!json.contains("op.idle"));
        // Empty history still forms a valid object.
        let empty = format_history_json(&StatsHistoryWire::default());
        assert!(empty.contains("\"samples\":[]"));
    }
}
