/root/repo/target/release/deps/micro_storage-b6aa554e0e5c623e.d: crates/bench/benches/micro_storage.rs

/root/repo/target/release/deps/micro_storage-b6aa554e0e5c623e: crates/bench/benches/micro_storage.rs

crates/bench/benches/micro_storage.rs:
