/root/repo/target/debug/deps/rls_server-b3bbcad78cc5d1a9.d: src/bin/rls-server.rs Cargo.toml

/root/repo/target/debug/deps/librls_server-b3bbcad78cc5d1a9.rmeta: src/bin/rls-server.rs Cargo.toml

src/bin/rls-server.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
