/root/repo/target/debug/deps/rls_faults-c207599cbc4167d7.d: crates/faults/src/lib.rs

/root/repo/target/debug/deps/librls_faults-c207599cbc4167d7.rmeta: crates/faults/src/lib.rs

crates/faults/src/lib.rs:
