/root/repo/target/debug/deps/trace_propagation-c6b84b8202d705e1.d: crates/core/tests/trace_propagation.rs Cargo.toml

/root/repo/target/debug/deps/libtrace_propagation-c6b84b8202d705e1.rmeta: crates/core/tests/trace_propagation.rs Cargo.toml

crates/core/tests/trace_propagation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
