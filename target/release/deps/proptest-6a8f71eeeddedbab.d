/root/repo/target/release/deps/proptest-6a8f71eeeddedbab.d: /tmp/vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-6a8f71eeeddedbab.rlib: /tmp/vendor/proptest/src/lib.rs

/root/repo/target/release/deps/libproptest-6a8f71eeeddedbab.rmeta: /tmp/vendor/proptest/src/lib.rs

/tmp/vendor/proptest/src/lib.rs:
