/root/repo/target/debug/examples/esg_fullmesh-66e7dac7392bb44f.d: examples/esg_fullmesh.rs

/root/repo/target/debug/examples/libesg_fullmesh-66e7dac7392bb44f.rmeta: examples/esg_fullmesh.rs

examples/esg_fullmesh.rs:
