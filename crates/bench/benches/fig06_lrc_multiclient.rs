//! **Figure 6** — Operation rates, LRC with 1 million entries in a MySQL
//! back end, multiple clients with 10 threads per client, database flush
//! disabled.
//!
//! Paper result: query rates 1700–2100/s, add rates 600–900/s, delete
//! rates 470–570/s; rates *drop* as total threads grow (queries/deletes
//! ≈20 %, adds ≈35 % from 10 → 100 threads). The reproduced claims: the
//! query > add > delete ordering and graceful (not collapsing) degradation
//! toward 100 requesting threads.

use std::time::Duration;

use rls_bench::{banner, header, row, start_lrc_sharded, Scale};
use rls_proto::Request;
use rls_storage::BackendProfile;
use rls_workload::{drive, drive_pipelined, preload_lrc, NameGen, Trials};

fn main() {
    let scale = Scale::from_args();
    banner(
        "Figure 6",
        "LRC op rates vs clients (10 threads each), flush disabled",
        &scale,
    );
    let entries = scale.pick(20_000, 1_000_000);
    let ops_per_trial = scale.pick(2_000, 20_000) as usize;
    println!("    preload: {entries} mappings  (catalog shards: {})", scale.shards);
    header(&["clients", "threads", "query/s", "add/s", "delete/s"]);

    let server = start_lrc_sharded(BackendProfile::mysql_buffered(), scale.shards);
    let gen = NameGen::new("fig06");
    preload_lrc(&server, &gen, entries).expect("preload");
    let tgen = NameGen::new("fig06-trial");

    for clients in 1..=10usize {
        let threads = clients * 10;
        let per_thread = ops_per_trial.div_ceil(threads);
        let (mut q, mut a, mut d) = (Trials::new(), Trials::new(), Trials::new());
        for trial in 0..scale.trials {
            let base = (trial * 10_000_000 + clients * 100_000) as u64;
            // Queries.
            let report = drive(
                server.addr(),
                rls_net::LinkProfile::unshaped(),
                None,
                threads,
                per_thread,
                |c, t, i| {
                    let idx = (t as u64).wrapping_mul(6151).wrapping_add(i as u64) % entries;
                    c.query_lfn(&gen.lfn(idx)).map(|_| ())
                },
            )
            .expect("queries");
            q.push(&report);
            // Adds (timed) ...
            let report = drive(
                server.addr(),
                rls_net::LinkProfile::unshaped(),
                None,
                threads,
                per_thread,
                |c, t, i| {
                    let idx = base + (t * per_thread + i) as u64;
                    c.create_mapping(&tgen.lfn(idx), &tgen.pfn(0, idx))
                },
            )
            .expect("adds");
            assert_eq!(report.errors, 0);
            a.push(&report);
            // ... then deletes of the same names (timed — Fig. 6 reports a
            // delete series).
            let report = drive(
                server.addr(),
                rls_net::LinkProfile::unshaped(),
                None,
                threads,
                per_thread,
                |c, t, i| {
                    let idx = base + (t * per_thread + i) as u64;
                    c.delete_mapping(&tgen.lfn(idx), &tgen.pfn(0, idx))
                },
            )
            .expect("deletes");
            assert_eq!(report.errors, 0);
            d.push(&report);
        }
        row(&[
            clients.to_string(),
            threads.to_string(),
            format!("{:.0}", q.mean_rate()),
            format!("{:.0}", a.mean_rate()),
            format!("{:.0}", d.mean_rate()),
        ]);
    }
    // Server-side view of the same load: per-operation latency quantiles
    // from the stats RPC (the client-side rates above are the paper's
    // Fig. 6 series; these are the matching server-side distributions).
    let mut c = rls_core::RlsClient::connect(server.addr(), &rls_types::Dn::anonymous())
        .expect("stats client");
    let stats = c.stats().expect("stats");
    println!("\n    server-side op latencies (us):");
    for (name, h) in &stats.op_latencies {
        let shown = matches!(name.as_str(), "op.query_lfn" | "op.create" | "op.delete");
        if shown && !h.is_empty() {
            println!(
                "      {name:<16} count={:<8} p50={:<6} p99={:<6} max={}",
                h.count,
                h.p50(),
                h.p99(),
                h.max_micros
            );
        }
    }
    // Worker-pool health under the same load: admission and scheduling
    // metrics from the bounded request path. `workers_busy_hwm` ≤
    // `worker_threads` is the pool bound holding; `busy_rejects` counts
    // over-cap connections turned away with a retryable Busy.
    println!("\n    worker pool:");
    for key in [
        "server.worker_threads",
        "server.workers_busy_hwm",
        "server.conns_admitted",
        "server.busy_rejects",
        "server.accept_errors",
        "server.idle_reaped",
    ] {
        let v = stats
            .counters
            .iter()
            .find(|(n, _)| n == key)
            .map(|(_, v)| *v)
            .unwrap_or(0);
        println!("      {key:<26} {v}");
    }
    for key in ["server.conn_wait", "server.accept_queue_depth"] {
        if let Some((_, h)) = stats.op_latencies.iter().find(|(n, _)| n == key) {
            if !h.is_empty() {
                println!(
                    "      {key:<26} count={:<8} p50={:<6} p99={:<6} max={}",
                    h.count,
                    h.p50(),
                    h.p99(),
                    h.max_micros
                );
            }
        }
    }
    println!("\n    expected shape: query > add > delete; modest decline toward 100 threads");

    // --- Pipelined RPC path --------------------------------------------
    // The fig07 gap closer: the same workload at an equal worker count,
    // lockstep vs `--pipeline <depth>` requests in flight per connection.
    // Lockstep pays one full round trip of dead wire per op; a pipelined
    // window keeps the server's request queue fed, so the per-op RPC
    // overhead amortizes toward the native (fig07) rate.
    let depth = if scale.pipeline > 1 { scale.pipeline } else { 8 };
    let pthreads = 10usize;
    let pper = ops_per_trial.div_ceil(pthreads);
    println!(
        "\n    pipelined comparison: {pthreads} threads, window depth {depth} vs lockstep"
    );
    header(&["series", "query/s", "add/s", "delete/s"]);
    for (label, d) in [("lockstep", 1usize), ("pipelined", depth)] {
        let (mut q, mut a, mut del) = (Trials::new(), Trials::new(), Trials::new());
        for trial in 0..scale.trials {
            let base = (900_000_000 + trial * 10_000_000 + d * 1_000_000) as u64;
            let report = drive_pipelined(
                server.addr(),
                rls_net::LinkProfile::unshaped(),
                None,
                pthreads,
                pper,
                d,
                |t, i| {
                    let idx = (t as u64).wrapping_mul(6151).wrapping_add(i as u64) % entries;
                    Request::QueryLfn(gen.lfn(idx))
                },
            )
            .expect("pipelined queries");
            assert_eq!(report.errors, 0);
            q.push(&report);
            let report = drive_pipelined(
                server.addr(),
                rls_net::LinkProfile::unshaped(),
                None,
                pthreads,
                pper,
                d,
                |t, i| {
                    let idx = base + (t * pper + i) as u64;
                    Request::Create(
                        rls_types::Mapping::new(tgen.lfn(idx), tgen.pfn(0, idx)).unwrap(),
                    )
                },
            )
            .expect("pipelined adds");
            assert_eq!(report.errors, 0);
            a.push(&report);
            let report = drive_pipelined(
                server.addr(),
                rls_net::LinkProfile::unshaped(),
                None,
                pthreads,
                pper,
                d,
                |t, i| {
                    let idx = base + (t * pper + i) as u64;
                    Request::Delete(
                        rls_types::Mapping::new(tgen.lfn(idx), tgen.pfn(0, idx)).unwrap(),
                    )
                },
            )
            .expect("pipelined deletes");
            assert_eq!(report.errors, 0);
            del.push(&report);
        }
        row(&[
            label.to_string(),
            format!("{:.0}", q.mean_rate()),
            format!("{:.0}", a.mean_rate()),
            format!("{:.0}", del.mean_rate()),
        ]);
    }
    println!("    expected shape: pipelined >= lockstep on every series");

    // --- Sharded durable adds ------------------------------------------
    // The write-scaling exhibit behind the `--shards` knob. With
    // per-commit flush every committed add pays a (simulated 2 ms) WAL
    // sync *inside its shard's write critical section*: a single engine
    // serializes every sync behind one lock, capping adds near
    // 1/sync-latency regardless of client count. With N shards, writers
    // whose LFNs hash to different shards hold different locks, so up to
    // N syncs overlap and the add rate scales with the shard count.
    let disk = Duration::from_millis(2);
    let wthreads = 16usize;
    let per_thread = scale.pick(50, 500) as usize;
    println!(
        "\n    durable adds: per-commit flush, {}ms simulated sync, {wthreads} threads, {} shards",
        disk.as_millis(),
        scale.shards
    );
    let server = start_lrc_sharded(
        BackendProfile::mysql_durable().with_sync_latency(disk),
        scale.shards,
    );
    let wgen = NameGen::new("fig06-durable");
    let mut tr = Trials::new();
    for trial in 0..scale.trials {
        let report = drive(
            server.addr(),
            rls_net::LinkProfile::unshaped(),
            None,
            wthreads,
            per_thread,
            |c, t, i| {
                let idx = ((trial * wthreads + t) * per_thread + i) as u64;
                c.create_mapping(&wgen.lfn(idx), &wgen.pfn(0, idx)).map(|_| ())
            },
        )
        .expect("durable adds");
        assert_eq!(report.errors, 0);
        tr.push(&report);
    }
    println!(
        "    durable add rate: {:.0}/s  (single-shard ceiling ~{:.0}/s)",
        tr.mean_rate(),
        1000.0 / disk.as_millis() as f64
    );
}
