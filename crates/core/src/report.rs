//! Human-readable rendering of server statistics.
//!
//! Turns a [`ServerStatsWire`] snapshot (opcode 50) into the operator
//! report printed by `rls-cli stats`: catalog sizes, per-operation latency
//! quantiles (the live counterpart of the paper's Figures 4–6), soft-state
//! and storage histograms, and the labeled counter list. Also renders the
//! machine-readable JSON form (`rls-cli stats --json`) and the span table
//! printed by `rls-cli trace`.

use rls_metrics::HistogramSnapshot;
use rls_proto::{ServerStatsWire, SpanWire};

/// Renders one latency value; the saturating bucket's upper bound is
/// `u64::MAX`, which we print as an open interval rather than the number.
fn fmt_micros(v: u64) -> String {
    if v == u64::MAX {
        ">=2^30".to_owned()
    } else {
        v.to_string()
    }
}

fn histogram_row(name: &str, h: &HistogramSnapshot) -> String {
    format!(
        "  {:<28} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
        name,
        h.count,
        // Saturating cast: a mean pinned at u64::MAX renders as the
        // open interval like the quantiles do.
        fmt_micros(h.mean_micros() as u64),
        fmt_micros(h.p50()),
        fmt_micros(h.p90()),
        fmt_micros(h.p99()),
        fmt_micros(h.max_micros),
    )
}

fn histogram_header(title: &str) -> String {
    format!(
        "{title}\n  {:<28} {:>8} {:>9} {:>9} {:>9} {:>9} {:>9}\n",
        "name", "count", "mean", "p50", "p90", "p99", "max"
    )
}

/// Formats a stats snapshot as a multi-line operator report.
///
/// Sections with no data are omitted, so a freshly started server prints
/// only the role/catalog summary.
pub fn format_stats_report(stats: &ServerStatsWire) -> String {
    let mut out = String::new();
    let roles = match (stats.is_lrc, stats.is_rli) {
        (true, true) => "LRC+RLI",
        (true, false) => "LRC",
        (false, true) => "RLI",
        (false, false) => "none",
    };
    out.push_str(&format!("roles: {roles}\n"));
    if stats.is_lrc {
        out.push_str(&format!(
            "lrc: {} lfns, {} mappings\n",
            stats.lrc_lfn_count, stats.lrc_mapping_count
        ));
    }
    if stats.is_rli {
        out.push_str(&format!(
            "rli: {} associations, {} bloom filters\n",
            stats.rli_association_count, stats.rli_bloom_filters
        ));
    }
    out.push_str(&format!(
        "totals: adds={} deletes={} queries={} updates_received={} expired={}\n",
        stats.adds, stats.deletes, stats.queries, stats.updates_received, stats.expired
    ));

    let (ops, other): (Vec<_>, Vec<_>) = stats
        .op_latencies
        .iter()
        .filter(|(_, h)| !h.is_empty())
        .partition(|(name, _)| name.starts_with("op."));
    if !ops.is_empty() {
        out.push('\n');
        out.push_str(&histogram_header("operation latencies (us):"));
        for (name, h) in &ops {
            out.push_str(&histogram_row(name, h));
        }
    }
    if !other.is_empty() {
        out.push('\n');
        out.push_str(&histogram_header("internal latencies (us):"));
        for (name, h) in &other {
            out.push_str(&histogram_row(name, h));
        }
    }
    if !stats.counters.is_empty() {
        out.push_str("\ncounters:\n");
        for (name, v) in &stats.counters {
            out.push_str(&format!("  {name:<40} {v}\n"));
        }
    }
    out
}

/// Escapes a string for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_histogram(h: &HistogramSnapshot) -> String {
    format!(
        "{{\"count\":{},\"mean_micros\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"max_micros\":{}}}",
        h.count,
        h.mean_micros() as u64,
        h.p50(),
        h.p90(),
        h.p99(),
        h.max_micros,
    )
}

/// Formats a stats snapshot as a single JSON object (`rls-cli stats
/// --json`). All latency values are raw microseconds; the saturating
/// bucket's `u64::MAX` is emitted verbatim so consumers can detect it.
pub fn format_stats_json(stats: &ServerStatsWire) -> String {
    let mut out = String::from("{");
    out.push_str(&format!(
        "\"is_lrc\":{},\"is_rli\":{},\"lrc_lfn_count\":{},\"lrc_mapping_count\":{},\
         \"rli_association_count\":{},\"rli_bloom_filters\":{},\"adds\":{},\"deletes\":{},\
         \"queries\":{},\"updates_received\":{},\"expired\":{}",
        stats.is_lrc,
        stats.is_rli,
        stats.lrc_lfn_count,
        stats.lrc_mapping_count,
        stats.rli_association_count,
        stats.rli_bloom_filters,
        stats.adds,
        stats.deletes,
        stats.queries,
        stats.updates_received,
        stats.expired,
    ));
    out.push_str(",\"op_latencies\":{");
    let mut first = true;
    for (name, h) in &stats.op_latencies {
        if h.is_empty() {
            continue;
        }
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("\"{}\":{}", json_escape(name), json_histogram(h)));
    }
    out.push_str("},\"counters\":{");
    for (i, (name, v)) in stats.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!("\"{}\":{v}", json_escape(name)));
    }
    out.push_str("}}");
    out
}

/// Renders spans returned by a `TraceQuery` as the table printed by
/// `rls-cli trace`. Trace IDs print as 16-digit hex (the form clients
/// report); span/parent IDs are journal-local decimal.
pub fn format_trace_report(spans: &[SpanWire]) -> String {
    if spans.is_empty() {
        return "no spans matched\n".to_owned();
    }
    let mut out = format!(
        "{:<16} {:>8} {:>8} {:<24} {:>14} {:>10}  {:<4} {}\n",
        "trace", "span", "parent", "op", "start_us", "dur_us", "ok", "detail"
    );
    for s in spans {
        out.push_str(&format!(
            "{:016x} {:>8} {:>8} {:<24} {:>14} {:>10}  {:<4} {}\n",
            s.trace_id,
            s.span_id,
            s.parent_span,
            s.op,
            s.start_micros,
            s.duration_micros,
            if s.ok { "ok" } else { "ERR" },
            s.detail,
        ));
    }
    out.push_str(&format!("{} span(s)\n", spans.len()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rls_metrics::LatencyHistogram;

    fn snap(samples: &[u64]) -> HistogramSnapshot {
        let h = LatencyHistogram::new();
        for &s in samples {
            h.record_micros(s);
        }
        h.snapshot()
    }

    #[test]
    fn report_includes_quantiles_and_counters() {
        let stats = ServerStatsWire {
            is_lrc: true,
            is_rli: false,
            lrc_lfn_count: 10,
            lrc_mapping_count: 20,
            adds: 3,
            op_latencies: vec![
                ("op.create".into(), snap(&[5, 7, 900])),
                ("storage.query_lfn".into(), snap(&[2])),
                ("op.never_called".into(), HistogramSnapshot::default()),
            ],
            counters: vec![("lrc.engine.inserts".into(), 42)],
            ..ServerStatsWire::default()
        };
        let report = format_stats_report(&stats);
        assert!(report.contains("roles: LRC"));
        assert!(report.contains("lrc: 10 lfns, 20 mappings"));
        assert!(report.contains("operation latencies"));
        assert!(report.contains("op.create"));
        assert!(report.contains("internal latencies"));
        assert!(report.contains("storage.query_lfn"));
        assert!(report.contains("lrc.engine.inserts"));
        // Empty histograms are suppressed.
        assert!(!report.contains("op.never_called"));
        // p50 of [5, 7, 900] falls in the [4,7] bucket → 7.
        assert!(report.lines().any(|l| l.contains("op.create") && l.contains(" 7 ")));
    }

    #[test]
    fn empty_snapshot_is_compact() {
        let report = format_stats_report(&ServerStatsWire::default());
        assert!(report.contains("roles: none"));
        assert!(!report.contains("latencies"));
        assert!(!report.contains("counters:"));
    }

    #[test]
    fn json_report_is_machine_readable() {
        let stats = ServerStatsWire {
            is_lrc: true,
            lrc_lfn_count: 10,
            adds: 3,
            op_latencies: vec![
                ("op.create".into(), snap(&[5, 7, 900])),
                ("op.never_called".into(), HistogramSnapshot::default()),
            ],
            counters: vec![("lrc.engine.inserts".into(), 42)],
            ..ServerStatsWire::default()
        };
        let json = format_stats_json(&stats);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"is_lrc\":true"));
        assert!(json.contains("\"lrc_lfn_count\":10"));
        assert!(json.contains("\"op.create\":{\"count\":3"));
        assert!(json.contains("\"lrc.engine.inserts\":42"));
        // Empty histograms are suppressed, matching the text report.
        assert!(!json.contains("op.never_called"));
        // Balanced braces — a cheap structural sanity check with no JSON
        // parser in the dependency tree.
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
    }

    #[test]
    fn json_escapes_metric_names() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("plain"), "plain");
    }

    #[test]
    fn trace_report_lists_spans() {
        let spans = vec![
            SpanWire {
                trace_id: 0xabc,
                span_id: 1,
                parent_span: 0,
                op: "op.create".into(),
                start_micros: 10,
                duration_micros: 250,
                ok: true,
                detail: String::new(),
            },
            SpanWire {
                trace_id: 0xabc,
                span_id: 2,
                parent_span: 1,
                op: "lrc.commit".into(),
                start_micros: 12,
                duration_micros: 200,
                ok: false,
                detail: "lfn0".into(),
            },
        ];
        let report = format_trace_report(&spans);
        assert!(report.contains("0000000000000abc"));
        assert!(report.contains("op.create"));
        assert!(report.contains("lrc.commit"));
        assert!(report.contains("ERR"));
        assert!(report.contains("lfn0"));
        assert!(report.contains("2 span(s)"));
        assert_eq!(format_trace_report(&[]), "no spans matched\n");
    }

    #[test]
    fn saturated_max_prints_open_interval() {
        let stats = ServerStatsWire {
            op_latencies: vec![("op.slow".into(), snap(&[u64::MAX]))],
            ..ServerStatsWire::default()
        };
        let report = format_stats_report(&stats);
        assert!(report.contains(">=2^30"));
    }
}
