/root/repo/target/debug/deps/e2e-a6d70d977c278687.d: crates/core/tests/e2e.rs

/root/repo/target/debug/deps/e2e-a6d70d977c278687: crates/core/tests/e2e.rs

crates/core/tests/e2e.rs:
