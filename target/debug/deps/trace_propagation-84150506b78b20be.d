/root/repo/target/debug/deps/trace_propagation-84150506b78b20be.d: crates/core/tests/trace_propagation.rs

/root/repo/target/debug/deps/trace_propagation-84150506b78b20be: crates/core/tests/trace_propagation.rs

crates/core/tests/trace_propagation.rs:
