/root/repo/target/debug/deps/sharding-0d1bae6e98d6b7c3.d: crates/core/tests/sharding.rs

/root/repo/target/debug/deps/libsharding-0d1bae6e98d6b7c3.rmeta: crates/core/tests/sharding.rs

crates/core/tests/sharding.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/core
