/root/repo/target/debug/deps/micro_softstate-c6c6cb8594fd45a6.d: crates/bench/benches/micro_softstate.rs

/root/repo/target/debug/deps/micro_softstate-c6c6cb8594fd45a6: crates/bench/benches/micro_softstate.rs

crates/bench/benches/micro_softstate.rs:
