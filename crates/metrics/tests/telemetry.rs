//! Flight-recorder telemetry suite (tier-1 gated): ring capacity/eviction,
//! monotonic timestamps, counter-reset-tolerant rate math, per-window
//! histogram percentiles, and exemplar window semantics.

use rls_metrics::{
    counter_delta, counter_window, histogram_delta, histogram_window, rate_per_sec, Exemplar,
    HistogramSnapshot, LatencyHistogram, Registry, TelemetryRing, TelemetrySample,
};

fn sample(uptime_micros: u64, counters: Vec<(&str, u64)>) -> TelemetrySample {
    TelemetrySample {
        seq: 0, // the ring assigns it
        at_unix_micros: 1_700_000_000_000_000 + uptime_micros,
        uptime_micros,
        counters: counters
            .into_iter()
            .map(|(n, v)| (n.to_string(), v))
            .collect(),
        histograms: Vec::new(),
    }
}

#[test]
fn ring_assigns_sequential_seqs_and_reports_totals() {
    let ring = TelemetryRing::new(8);
    assert!(ring.is_empty());
    assert_eq!(ring.capacity(), 8);
    for i in 0..5u64 {
        let seq = ring.push(sample(i * 1000, vec![]));
        assert_eq!(seq, i + 1);
    }
    assert_eq!(ring.len(), 5);
    assert_eq!(ring.total_samples(), 5);
    assert_eq!(ring.latest().unwrap().seq, 5);
}

#[test]
fn ring_capacity_evicts_oldest_but_seqs_keep_growing() {
    let ring = TelemetryRing::new(3);
    for i in 0..10u64 {
        ring.push(sample(i * 1000, vec![]));
    }
    assert_eq!(ring.len(), 3);
    assert_eq!(ring.total_samples(), 10);
    let all = ring.since(0, 0);
    let seqs: Vec<u64> = all.iter().map(|s| s.seq).collect();
    assert_eq!(seqs, vec![8, 9, 10]); // oldest evicted, numbering intact
}

#[test]
fn ring_capacity_zero_is_clamped_to_one() {
    let ring = TelemetryRing::new(0);
    assert_eq!(ring.capacity(), 1);
    ring.push(sample(1, vec![]));
    ring.push(sample(2, vec![]));
    assert_eq!(ring.len(), 1);
    assert_eq!(ring.latest().unwrap().seq, 2);
}

#[test]
fn ring_uptime_timestamps_are_forced_monotonic() {
    let ring = TelemetryRing::new(4);
    ring.push(sample(5_000, vec![]));
    // A caller whose clock went backwards cannot make time run backwards
    // inside the ring.
    ring.push(sample(3_000, vec![]));
    ring.push(sample(9_000, vec![]));
    let ups: Vec<u64> = ring.since(0, 0).iter().map(|s| s.uptime_micros).collect();
    assert_eq!(ups, vec![5_000, 5_000, 9_000]);
    assert!(ups.windows(2).all(|w| w[0] <= w[1]));
}

#[test]
fn since_cursor_and_limit_semantics() {
    let ring = TelemetryRing::new(10);
    for i in 0..6u64 {
        ring.push(sample(i, vec![]));
    }
    // Cursor: only samples strictly after the given seq.
    let tail = ring.since(4, 0);
    assert_eq!(tail.iter().map(|s| s.seq).collect::<Vec<_>>(), vec![5, 6]);
    // Limit keeps the newest matches (a stale dashboard wants "now").
    let newest = ring.since(0, 2);
    assert_eq!(newest.iter().map(|s| s.seq).collect::<Vec<_>>(), vec![5, 6]);
    // Cursor at or past the head yields nothing.
    assert!(ring.since(6, 0).is_empty());
    assert!(ring.since(99, 5).is_empty());
}

#[test]
fn counter_delta_is_reset_tolerant() {
    assert_eq!(counter_delta(100, 150), 50);
    assert_eq!(counter_delta(100, 100), 0);
    // Reset: the server restarted and counted 7 events since; the delta is
    // those 7, not a wrapped near-u64 monster.
    assert_eq!(counter_delta(100, 7), 7);
    assert_eq!(counter_delta(u64::MAX, 1), 1);
}

#[test]
fn rate_from_delta_math_handles_empty_windows() {
    // 500 events over half a second = 1000/s.
    let r = rate_per_sec(500, 500_000);
    assert!((r - 1000.0).abs() < 1e-9);
    // Empty (zero-length) window never divides by zero.
    assert_eq!(rate_per_sec(500, 0), 0.0);
    // Zero events is just zero.
    assert_eq!(rate_per_sec(0, 1_000_000), 0.0);
}

#[test]
fn counter_window_merges_new_and_missing_names() {
    let prev = vec![
        ("a.ops".to_string(), 10u64),
        ("gone".to_string(), 5),
        ("z.ops".to_string(), 100),
    ];
    let cur = vec![
        ("a.ops".to_string(), 25u64),
        ("born".to_string(), 3),
        ("z.ops".to_string(), 40), // reset mid-window
    ];
    let win = counter_window(&prev, &cur);
    assert_eq!(
        win,
        vec![("a.ops", 15u64), ("born", 3), ("z.ops", 40)],
        "new names count from zero, vanished names drop, resets tolerate"
    );
}

#[test]
fn histogram_delta_yields_window_percentiles() {
    let h = LatencyHistogram::new();
    for _ in 0..100 {
        h.record_micros(10);
    }
    let prev = h.snapshot();
    // Window: 90 fast + 10 slow samples on top of the old fast ones.
    for _ in 0..90 {
        h.record_micros(12);
    }
    for _ in 0..10 {
        h.record_micros(5_000);
    }
    let cur = h.snapshot();
    let win = histogram_delta(&prev, &cur);
    assert_eq!(win.count, 100);
    assert_eq!(win.sum_micros, 90 * 12 + 10 * 5_000);
    // The cumulative p99 is still dominated by the old fast samples …
    assert!(cur.quantile(0.5) <= 15);
    // … but the window p99 sees the spike.
    assert_eq!(win.p99(), 5_000);
    assert!(win.p50() <= 15);
}

#[test]
fn histogram_delta_tolerates_counter_reset() {
    let old = {
        let h = LatencyHistogram::new();
        for _ in 0..1000 {
            h.record_micros(50);
        }
        h.snapshot()
    };
    let fresh = {
        let h = LatencyHistogram::new();
        h.record_micros(30);
        h.record_micros(40);
        h.snapshot()
    };
    // The "current" snapshot has fewer samples than the previous one: a
    // restart. The window is the fresh snapshot itself.
    let win = histogram_delta(&old, &fresh);
    assert_eq!(win, fresh);
    assert_eq!(win.count, 2);
}

#[test]
fn histogram_delta_of_identical_snapshots_is_empty() {
    let h = LatencyHistogram::new();
    h.record_micros(123);
    let s = h.snapshot();
    let win = histogram_delta(&s, &s);
    assert!(win.is_empty());
    assert_eq!(win.count, 0);
    assert_eq!(win.p99(), 0);
}

#[test]
fn histogram_window_joins_by_name() {
    let h1 = LatencyHistogram::new();
    h1.record_micros(10);
    let prev = vec![("op.add".to_string(), h1.snapshot())];
    h1.record_micros(20);
    let h2 = LatencyHistogram::new();
    h2.record_micros(7);
    let cur = vec![
        ("op.add".to_string(), h1.snapshot()),
        ("op.new".to_string(), h2.snapshot()),
    ];
    let win = histogram_window(&prev, &cur);
    assert_eq!(win.len(), 2);
    assert_eq!(win[0].0, "op.add");
    assert_eq!(win[0].1.count, 1, "only the in-window sample remains");
    assert_eq!(win[1].0, "op.new");
    assert_eq!(win[1].1.count, 1, "metrics born mid-window count whole");
}

#[test]
fn ring_round_trips_full_registry_snapshots() {
    let reg = Registry::new();
    reg.counter("net.bytes_in").add(4096);
    reg.histogram("op.query").record_micros(250);
    let ring = TelemetryRing::new(4);
    ring.push(TelemetrySample {
        seq: 0,
        at_unix_micros: rls_metrics::unix_micros_now(),
        uptime_micros: 1_000,
        counters: reg.counter_snapshot(),
        histograms: reg.histogram_snapshot(),
    });
    reg.counter("net.bytes_in").add(4096);
    reg.histogram("op.query").record_micros(750);
    ring.push(TelemetrySample {
        seq: 0,
        at_unix_micros: rls_metrics::unix_micros_now(),
        uptime_micros: 2_000,
        counters: reg.counter_snapshot(),
        histograms: reg.histogram_snapshot(),
    });
    let samples = ring.since(0, 0);
    assert_eq!(samples.len(), 2);
    let counters = counter_window(&samples[0].counters, &samples[1].counters);
    assert_eq!(counters, vec![("net.bytes_in", 4096)]);
    let hists = histogram_window(&samples[0].histograms, &samples[1].histograms);
    assert_eq!(hists[0].1.count, 1);
    let window = samples[1].uptime_micros - samples[0].uptime_micros;
    assert!((rate_per_sec(counters[0].1, window) - 4_096_000.0).abs() < 1e-6);
}

#[test]
fn exemplar_keeps_the_window_worst_and_resets_on_take() {
    let e = Exemplar::new();
    assert_eq!(e.peek(), None);
    assert_eq!(e.take(), None, "empty window takes nothing");
    e.offer(100, 11);
    e.offer(50, 22); // not the worst; ignored
    e.offer(900, 33);
    assert_eq!(e.peek(), Some((900, 33)));
    assert_eq!(e.take(), Some((900, 33)));
    // The take rolled the window.
    assert_eq!(e.peek(), None);
    e.offer(10, 44);
    assert_eq!(e.take(), Some((10, 44)));
}

#[test]
fn registry_exemplars_are_get_or_create_and_enumerable() {
    let reg = Registry::new();
    reg.exemplar("op.add").offer(500, 7);
    reg.exemplar("op.add").offer(900, 8); // same handle
    reg.exemplar("op.query").offer(10, 9);
    let handles = reg.exemplar_handles();
    let names: Vec<&str> = handles.iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(names, vec!["op.add", "op.query"]);
    assert_eq!(handles[0].1.peek(), Some((900, 8)));
}
