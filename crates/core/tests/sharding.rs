//! Cross-shard semantics of the LFN-hash-partitioned catalog: bulk
//! operations keep their per-item error contract across shard boundaries,
//! writers on distinct shards never serialize on each other, and crash
//! recovery replays exactly the committed per-shard transactions from the
//! N independent WALs.

use std::sync::mpsc;
use std::sync::Arc;
use std::time::Duration;

use rls_core::{LrcConfig, LrcService, ShardedCatalog};
use rls_storage::{BackendProfile, BulkMappingOp};
use rls_types::{ErrorCode, Mapping};

fn m(l: &str, t: &str) -> Mapping {
    Mapping::new(l, t).unwrap()
}

fn service(shards: usize) -> LrcService {
    LrcService::new(LrcConfig {
        shards,
        ..Default::default()
    })
    .unwrap()
}

/// An LFN per shard: scans candidate names until every shard owns one.
fn lfn_on_each_shard(svc: &LrcService) -> Vec<String> {
    let n = svc.catalog().shard_count();
    let mut out: Vec<Option<String>> = vec![None; n];
    for i in 0.. {
        let lfn = format!("lfn://pin/{i}");
        let s = svc.catalog().shard_of(&lfn);
        if out[s].is_none() {
            out[s] = Some(lfn);
            if out.iter().all(Option::is_some) {
                break;
            }
        }
    }
    out.into_iter().map(Option::unwrap).collect()
}

/// A bulk batch with per-item failures scattered across shards commits the
/// good items and stages *nothing* for the failed slots — on any shard.
#[test]
fn per_item_bulk_errors_stage_nothing_on_any_shard() {
    let svc = service(4);
    // Two pre-existing names (almost surely on different shards) that the
    // batch will collide with.
    svc.create_mapping(&m("lfn://pre/a", "pfn://orig/a")).unwrap();
    svc.create_mapping(&m("lfn://pre/b", "pfn://orig/b")).unwrap();

    let mut items: Vec<Mapping> = (0..20)
        .map(|i| m(&format!("lfn://bulk/{i}"), &format!("pfn://bulk/{i}")))
        .collect();
    // Colliding creates at fixed slots: `create` requires a fresh LFN.
    items.insert(3, m("lfn://pre/a", "pfn://sneak/a"));
    items.insert(11, m("lfn://pre/b", "pfn://sneak/b"));

    let results = svc.bulk_mappings(BulkMappingOp::Create, &items).unwrap();
    assert_eq!(results.len(), 22);
    for (i, r) in results.iter().enumerate() {
        if i == 3 || i == 11 {
            let err = r.as_ref().unwrap_err();
            assert_eq!(err.code(), ErrorCode::MappingExists, "slot {i}: {err:?}");
        } else {
            assert!(r.is_ok(), "slot {i} must commit: {r:?}");
        }
    }
    // The failed slots staged nothing: the original mappings are intact
    // and the colliding targets appear nowhere in the catalog.
    let cat = svc.catalog();
    assert_eq!(cat.query_lfn("lfn://pre/a").unwrap().len(), 1);
    assert!(!cat.mapping_exists(&m("lfn://pre/a", "pfn://sneak/a")));
    assert!(cat.query_pfn("pfn://sneak/b").is_err());
    assert_eq!(cat.lfn_count(), 22); // 2 pre-existing + 20 committed
    assert_eq!(cat.mapping_count(), 22);

    // The fan-out is observable: per-shard commit counters cover several
    // shards and the bulk recorded its shard fan-out width.
    let shards_hit = (0..4)
        .filter(|i| svc.metrics().counter(&format!("storage.shard.{i}.commits")).get() > 0)
        .count();
    assert!(shards_hit >= 2, "20 names must land on ≥2 of 4 shards");
    assert!(svc.metrics().counter("wal.group_commits").get() >= shards_hit as u64);
}

/// Writers whose LFNs hash to different shards proceed in parallel: a
/// held write lock on one shard neither blocks a writer on another shard
/// nor is leaked by it. The same probe against the *held* shard blocks
/// until release — the lock is still doing its job.
#[test]
fn writers_on_distinct_shards_never_block() {
    let svc = Arc::new(service(4));
    let pins = lfn_on_each_shard(&svc);

    // Pin shard 0 exclusively, as a slow writer would.
    let guard = svc.catalog().shard(0).write();

    // A writer routed to shard 1 must complete while shard 0 stays held.
    let (tx, rx) = mpsc::channel();
    let other = {
        let svc = Arc::clone(&svc);
        let lfn = pins[1].clone();
        std::thread::spawn(move || {
            let r = svc.create_mapping(&m(&lfn, "pfn://other-shard"));
            tx.send(()).unwrap();
            r
        })
    };
    rx.recv_timeout(Duration::from_secs(10))
        .expect("writer on a distinct shard blocked behind an unrelated lock");
    other.join().unwrap().unwrap();

    // A writer routed to the held shard stays parked...
    let (tx0, rx0) = mpsc::channel();
    let same = {
        let svc = Arc::clone(&svc);
        let lfn = pins[0].clone();
        std::thread::spawn(move || {
            let r = svc.create_mapping(&m(&lfn, "pfn://same-shard"));
            tx0.send(()).unwrap();
            r
        })
    };
    assert!(
        rx0.recv_timeout(Duration::from_millis(100)).is_err(),
        "writer on the held shard must wait for the lock"
    );
    // ...and proceeds as soon as the lock releases.
    drop(guard);
    rx0.recv_timeout(Duration::from_secs(10))
        .expect("writer never unblocked after release");
    same.join().unwrap().unwrap();

    assert!(svc.catalog().lfn_exists(&pins[0]));
    assert!(svc.catalog().lfn_exists(&pins[1]));
}

/// Kill mid-bulk: a cross-shard bulk is one transaction *per shard*, so a
/// crash between shard transactions recovers exactly the committed shards'
/// items — nothing more, nothing less — by replaying all N WALs.
#[test]
fn kill_mid_bulk_recovers_exactly_committed_items() {
    let dir = std::env::temp_dir().join(format!("rls-shardkill-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let wal = dir.join("kill.wal");
    for entry in std::fs::read_dir(&dir).unwrap() {
        let _ = std::fs::remove_file(entry.unwrap().path());
    }
    let cfg = || LrcConfig {
        wal_path: Some(wal.clone()),
        profile: BackendProfile::mysql_durable(),
        shards: 4,
        ..Default::default()
    };

    let items: Vec<Mapping> = (0..40)
        .map(|i| m(&format!("lfn://kill/{i}"), &format!("pfn://kill/{i}")))
        .collect();

    // Phase 1: replicate the service's fan-out (group item indices by
    // owning shard, one group-committed transaction per shard in ascending
    // order) but "crash" after the first two shard transactions.
    let committed: Vec<usize> = {
        let cat = ShardedCatalog::open(&cfg()).unwrap();
        let mut by_shard: Vec<Vec<usize>> = vec![Vec::new(); 4];
        for (i, it) in items.iter().enumerate() {
            by_shard[cat.shard_of(it.logical.as_str())].push(i);
        }
        assert!(
            by_shard.iter().filter(|idx| !idx.is_empty()).count() >= 3,
            "40 names must spread over ≥3 shards for the test to bite"
        );
        let mut committed = Vec::new();
        for (shard, idx) in by_shard.iter().enumerate().take(2) {
            if idx.is_empty() {
                continue;
            }
            let results = cat
                .shard(shard)
                .write()
                .bulk_mappings_indexed(BulkMappingOp::Create, &items, idx)
                .unwrap();
            assert!(results.iter().all(Result::is_ok));
            committed.extend_from_slice(idx);
        }
        committed
        // `cat` dropped here without any orderly shutdown: the kill.
    };
    assert!(!committed.is_empty() && committed.len() < items.len());

    // Phase 2: recovery replays the per-shard WALs. Exactly the committed
    // items are back; the un-committed shards contributed nothing.
    {
        let cat = ShardedCatalog::open(&cfg()).unwrap();
        assert_eq!(cat.mapping_count(), committed.len() as u64);
        for (i, it) in items.iter().enumerate() {
            if committed.contains(&i) {
                assert!(cat.mapping_exists(it), "lost committed item {i}");
            } else {
                assert!(!cat.lfn_exists(it.logical.as_str()), "ghost item {i}");
            }
        }
    }

    // Phase 3: the full service reopens the same catalog and re-runs the
    // whole batch; the already-committed slots fail per-item (`create`
    // demands a fresh LFN) without disturbing anything, the rest commit.
    {
        let svc = LrcService::new(cfg()).unwrap();
        let results = svc.bulk_mappings(BulkMappingOp::Create, &items).unwrap();
        for (i, r) in results.iter().enumerate() {
            assert_eq!(
                r.is_err(),
                committed.contains(&i),
                "slot {i} after recovery: {r:?}"
            );
        }
        assert_eq!(svc.catalog().mapping_count(), items.len() as u64);
    }

    // And a final reopen proves the second run's commits were durable too.
    let cat = ShardedCatalog::open(&cfg()).unwrap();
    assert_eq!(cat.mapping_count(), items.len() as u64);
    for it in &items {
        assert!(cat.mapping_exists(it));
    }
    for entry in std::fs::read_dir(&dir).unwrap() {
        let _ = std::fs::remove_file(entry.unwrap().path());
    }
}

/// `shards = 1` is byte-for-byte the classic single-engine behaviour: the
/// same workload lands in the same state as a 4-shard catalog, and a bulk
/// batch is exactly one group commit.
#[test]
fn single_shard_matches_sharded_results() {
    let one = service(1);
    let four = service(4);
    let items: Vec<Mapping> = (0..30)
        .map(|i| m(&format!("lfn://eq/{i}"), &format!("pfn://eq/{}", i % 5)))
        .collect();
    for svc in [&one, &four] {
        let results = svc.bulk_mappings(BulkMappingOp::Create, &items).unwrap();
        assert!(results.iter().all(Result::is_ok));
        svc.delete_mapping(&m("lfn://eq/7", "pfn://eq/2")).unwrap();
    }
    assert_eq!(one.catalog().lfn_count(), four.catalog().lfn_count());
    assert_eq!(one.catalog().mapping_count(), four.catalog().mapping_count());
    for i in 0..30 {
        let lfn = format!("lfn://eq/{i}");
        let sort = |mut v: Vec<rls_types::TargetName>| {
            v.sort();
            v
        };
        match (one.catalog().query_lfn(&lfn), four.catalog().query_lfn(&lfn)) {
            (Ok(a), Ok(b)) => assert_eq!(sort(a), sort(b), "{lfn}"),
            (Err(a), Err(b)) => assert_eq!(a.code(), b.code(), "{lfn}"),
            (a, b) => panic!("{lfn}: diverged: {a:?} vs {b:?}"),
        }
    }
    // PFN fan-out merges to the same answer.
    for p in 0..5 {
        let pfn = format!("pfn://eq/{p}");
        let mut a = one.catalog().query_pfn(&pfn).unwrap();
        let mut b = four.catalog().query_pfn(&pfn).unwrap();
        a.sort();
        b.sort();
        assert_eq!(a, b, "{pfn}");
    }
    // The single-shard bulk stayed one transaction, the classic path.
    assert_eq!(one.metrics().counter("wal.group_commits").get(), 1);
}

/// Repo lint: every PR appends its line to CHANGES.md — this one included.
/// Fails the tier-1 `--test sharding` gate if the entry is missing.
#[test]
fn changes_md_records_this_pr() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../CHANGES.md");
    let text = std::fs::read_to_string(&path).expect("CHANGES.md must exist at the repo root");
    assert!(
        text.lines().any(|l| l.trim_start().starts_with("- PR 6 (")),
        "CHANGES.md is missing its PR 6 entry"
    );
}
