/root/repo/target/debug/deps/rand-fb1e8746bea2f9a2.d: /tmp/vendor/rand/src/lib.rs

/root/repo/target/debug/deps/librand-fb1e8746bea2f9a2.rmeta: /tmp/vendor/rand/src/lib.rs

/tmp/vendor/rand/src/lib.rs:
