/root/repo/target/release/deps/rls-e250290062f66298.d: src/lib.rs

/root/repo/target/release/deps/librls-e250290062f66298.rlib: src/lib.rs

/root/repo/target/release/deps/librls-e250290062f66298.rmeta: src/lib.rs

src/lib.rs:
