/root/repo/target/release/deps/rls_workload-2190635d510a924c.d: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/driver.rs crates/workload/src/namegen.rs crates/workload/src/stats.rs

/root/repo/target/release/deps/librls_workload-2190635d510a924c.rlib: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/driver.rs crates/workload/src/namegen.rs crates/workload/src/stats.rs

/root/repo/target/release/deps/librls_workload-2190635d510a924c.rmeta: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/driver.rs crates/workload/src/namegen.rs crates/workload/src/stats.rs

crates/workload/src/lib.rs:
crates/workload/src/dist.rs:
crates/workload/src/driver.rs:
crates/workload/src/namegen.rs:
crates/workload/src/stats.rs:
