//! Heap tables: slotted row storage with profile-dependent delete
//! behaviour.
//!
//! * **MySQL-like** deletes reclaim the slot immediately and strip index
//!   entries synchronously; freed slots are reused by later inserts.
//! * **PostgreSQL-like** deletes leave a *dead tuple*: the slot keeps the
//!   row (so vacuum can find its index keys), index entries remain (bloat),
//!   and inserts append to the end of the heap. Scans and index probes must
//!   skip dead tuples — the mechanical cause of the paper's Figure 8 decay.
//!   [`Table::vacuum`] physically reclaims dead tuples and their index
//!   entries, restoring full speed.

use std::time::Duration;

use rls_types::{RlsError, RlsResult};

use crate::index::Index;
use crate::profile::Vendor;
use crate::schema::TableSchema;
use crate::value::{Row, Value};

/// Identifies a row slot within one table. Stable for the life of the row.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RowId(pub u64);

#[derive(Clone, Debug)]
enum Slot {
    Live(Row),
    /// PostgreSQL-like tombstone: row retained so vacuum can strip its
    /// index entries.
    Dead(Row),
    Free,
}

/// A heap table with secondary indexes.
#[derive(Debug)]
pub struct Table {
    schema: TableSchema,
    slots: Vec<Slot>,
    free: Vec<RowId>,
    indexes: Vec<Index>,
    live: u64,
    dead: u64,
    /// Simulated visibility-check cost per dead index entry skipped — see
    /// [`BackendProfile::dead_probe_cost`](crate::BackendProfile).
    dead_probe_cost: Option<Duration>,
}

/// Spins for the simulated visibility-check duration. Spinning (rather
/// than sleeping) keeps sub-10 µs charges accurate.
#[inline]
fn charge_dead_probe(cost: Option<Duration>) {
    if let Some(cost) = cost {
        let t0 = std::time::Instant::now();
        while t0.elapsed() < cost {
            std::hint::spin_loop();
        }
    }
}

impl Table {
    /// Creates an empty table.
    pub fn new(schema: TableSchema) -> Self {
        let indexes = schema
            .indexes
            .iter()
            .map(|spec| Index::new(spec.kind))
            .collect();
        Self {
            schema,
            slots: Vec::new(),
            free: Vec::new(),
            indexes,
            live: 0,
            dead: 0,
            dead_probe_cost: None,
        }
    }

    /// Sets the simulated per-dead-entry probe charge (engine applies the
    /// backend profile's setting at table creation).
    pub fn set_dead_probe_cost(&mut self, cost: Option<Duration>) {
        self.dead_probe_cost = cost;
    }

    /// The table's schema.
    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    /// Live row count.
    pub fn len(&self) -> u64 {
        self.live
    }

    /// True if no live rows.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Dead-tuple count (PostgreSQL-like profile only).
    pub fn dead_count(&self) -> u64 {
        self.dead
    }

    /// Heap size including dead tuples and free slots.
    pub fn heap_size(&self) -> usize {
        self.slots.len()
    }

    fn check_types(&self, row: &Row) -> RlsResult<()> {
        if row.len() != self.schema.arity() {
            return Err(RlsError::storage(format!(
                "table {}: row arity {} != schema arity {}",
                self.schema.name,
                row.len(),
                self.schema.arity()
            )));
        }
        for (col, val) in self.schema.columns.iter().zip(row) {
            if val.value_type() != col.vtype {
                return Err(RlsError::storage(format!(
                    "table {}: column {} expects {:?}, got {:?}",
                    self.schema.name,
                    col.name,
                    col.vtype,
                    val.value_type()
                )));
            }
        }
        Ok(())
    }

    /// Checks unique indexes for a conflicting *live* row.
    fn check_unique(&self, row: &Row) -> RlsResult<()> {
        for (spec, index) in self.schema.indexes.iter().zip(&self.indexes) {
            if !spec.unique {
                continue;
            }
            let key = &row[spec.column];
            if let Some(postings) = index.lookup(key) {
                for id in postings.iter() {
                    if matches!(self.slots[id.0 as usize], Slot::Live(_)) {
                        return Err(RlsError::storage(format!(
                            "table {}: unique violation on column {} ({key})",
                            self.schema.name, self.schema.columns[spec.column].name
                        )));
                    }
                    charge_dead_probe(self.dead_probe_cost);
                }
            }
        }
        Ok(())
    }

    /// Inserts a row, returning its id.
    pub fn insert(&mut self, vendor: Vendor, row: Row) -> RlsResult<RowId> {
        self.check_types(&row)?;
        self.check_unique(&row)?;
        let id = match vendor {
            // MySQL-like: reuse freed slots.
            Vendor::MySqlLike => match self.free.pop() {
                Some(id) => {
                    self.slots[id.0 as usize] = Slot::Live(row.clone());
                    id
                }
                None => {
                    let id = RowId(self.slots.len() as u64);
                    self.slots.push(Slot::Live(row.clone()));
                    id
                }
            },
            // PostgreSQL-like: append unless vacuum has produced free space.
            Vendor::PostgresLike => match self.free.pop() {
                Some(id) => {
                    self.slots[id.0 as usize] = Slot::Live(row.clone());
                    id
                }
                None => {
                    let id = RowId(self.slots.len() as u64);
                    self.slots.push(Slot::Live(row.clone()));
                    id
                }
            },
        };
        for (spec, index) in self.schema.indexes.iter().zip(&mut self.indexes) {
            index.insert(row[spec.column].clone(), id);
        }
        self.live += 1;
        Ok(id)
    }

    /// Deletes a row by id. Returns the removed row.
    pub fn delete(&mut self, vendor: Vendor, id: RowId) -> RlsResult<Row> {
        let slot = self
            .slots
            .get_mut(id.0 as usize)
            .ok_or_else(|| RlsError::storage(format!("delete of invalid row id {id:?}")))?;
        let row = match std::mem::replace(slot, Slot::Free) {
            Slot::Live(row) => row,
            other => {
                *slot = other;
                return Err(RlsError::storage(format!(
                    "delete of non-live row id {id:?}"
                )));
            }
        };
        self.live -= 1;
        match vendor {
            Vendor::MySqlLike => {
                // Strip index entries now; slot becomes reusable.
                for (spec, index) in self.schema.indexes.iter().zip(&mut self.indexes) {
                    index.remove(&row[spec.column], id);
                }
                self.free.push(id);
                Ok(row)
            }
            Vendor::PostgresLike => {
                // Dead tuple: index entries stay, slot holds the corpse.
                self.slots[id.0 as usize] = Slot::Dead(row.clone());
                self.dead += 1;
                Ok(row)
            }
        }
    }

    /// Updates a row in place, maintaining indexes for changed key columns.
    pub fn update(&mut self, id: RowId, new_row: Row) -> RlsResult<Row> {
        self.check_types(&new_row)?;
        let old = match self.slots.get(id.0 as usize) {
            Some(Slot::Live(row)) => row.clone(),
            _ => {
                return Err(RlsError::storage(format!(
                    "update of non-live row id {id:?}"
                )))
            }
        };
        for (spec, index) in self.schema.indexes.iter().zip(&mut self.indexes) {
            let (o, n) = (&old[spec.column], &new_row[spec.column]);
            if o != n {
                index.remove(o, id);
                index.insert(n.clone(), id);
            }
        }
        self.slots[id.0 as usize] = Slot::Live(new_row);
        Ok(old)
    }

    /// Fetches a live row.
    pub fn get(&self, id: RowId) -> Option<&Row> {
        match self.slots.get(id.0 as usize) {
            Some(Slot::Live(row)) => Some(row),
            _ => None,
        }
    }

    /// True if `id` refers to a live row.
    pub fn is_live(&self, id: RowId) -> bool {
        matches!(self.slots.get(id.0 as usize), Some(Slot::Live(_)))
    }

    /// Index probe: live rows whose indexed column equals `key`.
    ///
    /// Walks the postings list including dead entries (PostgreSQL-like
    /// bloat) and filters by liveness.
    pub fn index_lookup<'a>(
        &'a self,
        index_no: usize,
        key: &Value,
    ) -> impl Iterator<Item = (RowId, &'a Row)> + 'a {
        let cost = self.dead_probe_cost;
        self.indexes[index_no]
            .lookup(key)
            .into_iter()
            .flat_map(|p| p.iter())
            .filter_map(move |id| match &self.slots[id.0 as usize] {
                Slot::Live(row) => Some((id, row)),
                _ => {
                    charge_dead_probe(cost);
                    None
                }
            })
    }

    /// Ordered-index prefix scan: live rows whose indexed string column
    /// starts with `prefix`, in key order.
    pub fn index_prefix_scan<'a>(
        &'a self,
        index_no: usize,
        prefix: &str,
    ) -> impl Iterator<Item = (RowId, &'a Row)> + 'a {
        use std::ops::Bound;
        let lo = Value::str(prefix);
        // The exclusive upper bound is the prefix with its last byte
        // incremented; an empty prefix scans everything.
        let hi = prefix_upper_bound(prefix);
        let lo_bound = Bound::Included(&lo);
        let hi_val;
        let hi_bound = match &hi {
            Some(h) => {
                hi_val = Value::str(h);
                Bound::Excluded(&hi_val)
            }
            None => Bound::Unbounded,
        };
        // Collect candidate ids first: the range borrow cannot outlive the
        // bound locals.
        let ids: Vec<RowId> = self.indexes[index_no]
            .range(lo_bound, hi_bound)
            .flat_map(|(_, p)| p.iter())
            .collect();
        let cost = self.dead_probe_cost;
        ids.into_iter()
            .filter_map(move |id| match &self.slots[id.0 as usize] {
                Slot::Live(row) => Some((id, row)),
                _ => {
                    charge_dead_probe(cost);
                    None
                }
            })
    }

    /// Full heap scan over live rows (pays the cost of skipping dead
    /// tuples and free slots).
    pub fn scan(&self) -> impl Iterator<Item = (RowId, &Row)> + '_ {
        self.slots.iter().enumerate().filter_map(|(i, s)| match s {
            Slot::Live(row) => Some((RowId(i as u64), row)),
            _ => None,
        })
    }

    /// Physically reclaims dead tuples: strips their index entries and
    /// frees their slots. Returns the number of tuples reclaimed.
    ///
    /// This is the engine's `VACUUM`. Like PostgreSQL's, it takes time
    /// proportional to heap and index size and makes freed space reusable.
    pub fn vacuum(&mut self) -> u64 {
        let mut reclaimed = 0;
        for i in 0..self.slots.len() {
            if matches!(self.slots[i], Slot::Dead(_)) {
                let id = RowId(i as u64);
                let row = match std::mem::replace(&mut self.slots[i], Slot::Free) {
                    Slot::Dead(row) => row,
                    _ => unreachable!("checked dead above"),
                };
                for (spec, index) in self.schema.indexes.iter().zip(&mut self.indexes) {
                    index.remove(&row[spec.column], id);
                }
                self.free.push(id);
                reclaimed += 1;
            }
        }
        self.dead = 0;
        reclaimed
    }

    /// Total index entries across all indexes (bloat metric).
    pub fn index_entry_count(&self) -> usize {
        self.indexes.iter().map(Index::entry_count).sum()
    }

    /// Drops all rows and index entries.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.free.clear();
        self.indexes.iter_mut().for_each(Index::clear);
        self.live = 0;
        self.dead = 0;
    }

    /// Iterates all live rows for snapshotting.
    pub(crate) fn export_rows(&self) -> impl Iterator<Item = &Row> + '_ {
        self.scan().map(|(_, r)| r)
    }
}

/// Smallest string strictly greater than every string with this prefix, or
/// `None` if no such bound exists (prefix is empty or all `0xFF`).
fn prefix_upper_bound(prefix: &str) -> Option<String> {
    let mut bytes = prefix.as_bytes().to_vec();
    while let Some(&last) = bytes.last() {
        if last < 0xFF {
            *bytes.last_mut().expect("nonempty") = last + 1;
            // Lossy is fine: the bound only needs byte-wise ordering, and
            // valid UTF-8 of the bumped byte is guaranteed for ASCII, which
            // covers names; non-ASCII falls back to replacement handling.
            return Some(String::from_utf8_lossy(&bytes).into_owned());
        }
        bytes.pop();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, IndexSpec};
    use crate::value::ValueType;

    fn schema() -> TableSchema {
        TableSchema::new(
            "t",
            vec![
                ColumnDef::new("id", ValueType::Int),
                ColumnDef::new("name", ValueType::Str),
            ],
            vec![IndexSpec::unique_hash(0), IndexSpec::ordered(1)],
        )
    }

    fn row(id: i64, name: &str) -> Row {
        vec![Value::Int(id), Value::str(name)]
    }

    #[test]
    fn insert_get_delete_mysql() {
        let mut t = Table::new(schema());
        let id = t.insert(Vendor::MySqlLike, row(1, "a")).unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(id).unwrap()[1].as_str(), "a");
        let removed = t.delete(Vendor::MySqlLike, id).unwrap();
        assert_eq!(removed[0].as_int(), 1);
        assert_eq!(t.len(), 0);
        assert_eq!(t.dead_count(), 0);
        assert!(t.get(id).is_none());
        // Slot is reused.
        let id2 = t.insert(Vendor::MySqlLike, row(2, "b")).unwrap();
        assert_eq!(id2, id);
        assert_eq!(t.heap_size(), 1);
    }

    #[test]
    fn postgres_deletes_leave_dead_tuples() {
        let mut t = Table::new(schema());
        let id = t.insert(Vendor::PostgresLike, row(1, "a")).unwrap();
        t.delete(Vendor::PostgresLike, id).unwrap();
        assert_eq!(t.len(), 0);
        assert_eq!(t.dead_count(), 1);
        // Index entry still present (bloat) but probe filters liveness.
        assert_eq!(t.index_entry_count(), 2); // both indexes keep the entry
        assert_eq!(t.index_lookup(0, &Value::Int(1)).count(), 0);
        // New insert appends rather than reusing the dead slot.
        t.insert(Vendor::PostgresLike, row(1, "a")).unwrap();
        assert_eq!(t.heap_size(), 2);
    }

    #[test]
    fn vacuum_reclaims_dead_tuples() {
        let mut t = Table::new(schema());
        for i in 0..10 {
            t.insert(Vendor::PostgresLike, row(i, &format!("n{i}")))
                .unwrap();
        }
        for i in 0..10u64 {
            t.delete(Vendor::PostgresLike, RowId(i)).unwrap();
        }
        assert_eq!(t.dead_count(), 10);
        assert_eq!(t.index_entry_count(), 20);
        assert_eq!(t.vacuum(), 10);
        assert_eq!(t.dead_count(), 0);
        assert_eq!(t.index_entry_count(), 0);
        // Freed slots now reusable.
        t.insert(Vendor::PostgresLike, row(99, "z")).unwrap();
        assert_eq!(t.heap_size(), 10);
    }

    #[test]
    fn unique_violation_detected() {
        let mut t = Table::new(schema());
        t.insert(Vendor::MySqlLike, row(1, "a")).unwrap();
        let err = t.insert(Vendor::MySqlLike, row(1, "b")).unwrap_err();
        assert!(err.message().contains("unique violation"), "{err}");
    }

    #[test]
    fn unique_check_ignores_dead_rows() {
        let mut t = Table::new(schema());
        let id = t.insert(Vendor::PostgresLike, row(1, "a")).unwrap();
        t.delete(Vendor::PostgresLike, id).unwrap();
        // Same key again: dead tuple must not block re-insert.
        t.insert(Vendor::PostgresLike, row(1, "a")).unwrap();
    }

    #[test]
    fn type_and_arity_validation() {
        let mut t = Table::new(schema());
        assert!(t
            .insert(Vendor::MySqlLike, vec![Value::str("x"), Value::str("y")])
            .is_err());
        assert!(t.insert(Vendor::MySqlLike, vec![Value::Int(1)]).is_err());
    }

    #[test]
    fn update_maintains_indexes() {
        let mut t = Table::new(schema());
        let id = t.insert(Vendor::MySqlLike, row(1, "old")).unwrap();
        t.update(id, row(1, "new")).unwrap();
        assert_eq!(t.index_lookup(0, &Value::Int(1)).count(), 1);
        let hits: Vec<_> = t.index_prefix_scan(1, "new").collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(t.index_prefix_scan(1, "old").count(), 0);
    }

    #[test]
    fn prefix_scan_bounds() {
        let mut t = Table::new(schema());
        for (i, name) in ["lfn://a/1", "lfn://a/2", "lfn://b/1", "other"]
            .iter()
            .enumerate()
        {
            t.insert(Vendor::MySqlLike, row(i as i64, name)).unwrap();
        }
        let hits: Vec<&str> = t
            .index_prefix_scan(1, "lfn://a/")
            .map(|(_, r)| r[1].as_str())
            .collect();
        assert_eq!(hits, vec!["lfn://a/1", "lfn://a/2"]);
        // Empty prefix scans everything in order.
        assert_eq!(t.index_prefix_scan(1, "").count(), 4);
    }

    #[test]
    fn prefix_upper_bound_edges() {
        assert_eq!(prefix_upper_bound("abc"), Some("abd".to_owned()));
        assert_eq!(prefix_upper_bound(""), None);
        let high = "\u{10FFFF}"; // ends in non-0xFF bytes after UTF-8 encode
        assert!(prefix_upper_bound(high).is_some());
    }

    #[test]
    fn delete_invalid_ids() {
        let mut t = Table::new(schema());
        assert!(t.delete(Vendor::MySqlLike, RowId(5)).is_err());
        let id = t.insert(Vendor::MySqlLike, row(1, "a")).unwrap();
        t.delete(Vendor::MySqlLike, id).unwrap();
        assert!(t.delete(Vendor::MySqlLike, id).is_err());
    }

    #[test]
    fn scan_skips_dead_and_free() {
        let mut t = Table::new(schema());
        let a = t.insert(Vendor::PostgresLike, row(1, "a")).unwrap();
        t.insert(Vendor::PostgresLike, row(2, "b")).unwrap();
        t.delete(Vendor::PostgresLike, a).unwrap();
        let names: Vec<&str> = t.scan().map(|(_, r)| r[1].as_str()).collect();
        assert_eq!(names, vec!["b"]);
    }
}
