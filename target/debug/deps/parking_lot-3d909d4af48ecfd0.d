/root/repo/target/debug/deps/parking_lot-3d909d4af48ecfd0.d: /tmp/vendor/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-3d909d4af48ecfd0.rmeta: /tmp/vendor/parking_lot/src/lib.rs

/tmp/vendor/parking_lot/src/lib.rs:
