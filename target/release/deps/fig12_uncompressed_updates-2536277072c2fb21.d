/root/repo/target/release/deps/fig12_uncompressed_updates-2536277072c2fb21.d: crates/bench/benches/fig12_uncompressed_updates.rs

/root/repo/target/release/deps/fig12_uncompressed_updates-2536277072c2fb21: crates/bench/benches/fig12_uncompressed_updates.rs

crates/bench/benches/fig12_uncompressed_updates.rs:
