/root/repo/target/release/deps/micro_codec-aa1f3c04bcfb4b98.d: crates/bench/benches/micro_codec.rs

/root/repo/target/release/deps/micro_codec-aa1f3c04bcfb4b98: crates/bench/benches/micro_codec.rs

crates/bench/benches/micro_codec.rs:
