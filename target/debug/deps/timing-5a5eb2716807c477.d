/root/repo/target/debug/deps/timing-5a5eb2716807c477.d: crates/net/tests/timing.rs

/root/repo/target/debug/deps/timing-5a5eb2716807c477: crates/net/tests/timing.rs

crates/net/tests/timing.rs:
