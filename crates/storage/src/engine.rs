//! The database engine: a catalog of tables plus WAL-backed durability.
//!
//! `Database` itself is **not** internally synchronized — it is the
//! single-writer core. The service layer (`rls-core`) wraps it in a
//! `parking_lot::RwLock`, giving concurrent readers and serialized writers,
//! which is the concurrency structure the paper's LRC exhibits (queries
//! scale with threads; updates contend).

use std::path::Path;

use rls_types::{RlsError, RlsResult};

use crate::profile::{BackendProfile, FlushMode};
use crate::schema::TableSchema;
use crate::stats::EngineStats;
use crate::table::{RowId, Table};
use crate::txn::Transaction;
use crate::value::Row;
use crate::wal::{Wal, WalOp};

/// Identifies a table within one database.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TableId(pub u32);

/// An embedded relational database.
#[derive(Debug)]
pub struct Database {
    profile: BackendProfile,
    tables: Vec<Table>,
    wal: Option<Wal>,
    stats: EngineStats,
}

impl Database {
    /// Creates a database with no durability (unit tests, Bloom-mode RLIs).
    pub fn in_memory(profile: BackendProfile) -> Self {
        Self {
            profile: BackendProfile {
                flush: FlushMode::None,
                ..profile
            },
            tables: Vec::new(),
            wal: None,
            stats: EngineStats::default(),
        }
    }

    /// Opens a WAL-backed database. Call [`Self::recover`] after creating
    /// the schema to replay any existing log.
    pub fn open(profile: BackendProfile, wal_path: impl AsRef<Path>) -> RlsResult<Self> {
        let wal = match profile.flush {
            FlushMode::None => None,
            mode => Some(Wal::open(wal_path, mode, profile.simulated_sync_latency)?),
        };
        Ok(Self {
            profile,
            tables: Vec::new(),
            wal,
            stats: EngineStats::default(),
        })
    }

    /// The backend profile.
    pub fn profile(&self) -> BackendProfile {
        self.profile
    }

    /// Engine counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Registers a table. Schema creation is code-driven and deterministic;
    /// it is not WAL-logged.
    pub fn create_table(&mut self, schema: TableSchema) -> TableId {
        let id = TableId(self.tables.len() as u32);
        let mut table = Table::new(schema);
        table.set_dead_probe_cost(self.profile.dead_probe_cost);
        self.tables.push(table);
        id
    }

    /// Immutable table access (reads).
    pub fn table(&self, id: TableId) -> &Table {
        &self.tables[id.0 as usize]
    }

    /// Number of registered tables.
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Replays the WAL into freshly created tables. Must be called after
    /// the full schema is registered and before any new writes.
    pub fn recover(&mut self) -> RlsResult<u64> {
        let Some(wal) = &self.wal else {
            return Ok(0);
        };
        let txns = Wal::replay(wal.path())?;
        let vendor = self.profile.vendor;
        let mut applied = 0u64;
        for ops in txns {
            for op in ops {
                match op {
                    WalOp::Insert { table, row } => {
                        self.tables
                            .get_mut(table as usize)
                            .ok_or_else(|| RlsError::storage("recover: unknown table"))?
                            .insert(vendor, row)?;
                    }
                    WalOp::Delete { table, row_id } => {
                        self.tables
                            .get_mut(table as usize)
                            .ok_or_else(|| RlsError::storage("recover: unknown table"))?
                            .delete(vendor, RowId(row_id))?;
                    }
                    WalOp::Update { table, row_id, row } => {
                        self.tables
                            .get_mut(table as usize)
                            .ok_or_else(|| RlsError::storage("recover: unknown table"))?
                            .update(RowId(row_id), row)?;
                    }
                    WalOp::Vacuum { table } => {
                        self.tables
                            .get_mut(table as usize)
                            .ok_or_else(|| RlsError::storage("recover: unknown table"))?
                            .vacuum();
                    }
                }
                applied += 1;
            }
        }
        Ok(applied)
    }

    /// Stages an insert: applies to the table and records it in `txn`.
    pub fn txn_insert(
        &mut self,
        txn: &mut Transaction,
        table: TableId,
        row: Row,
    ) -> RlsResult<RowId> {
        let id = self.tables[table.0 as usize].insert(self.profile.vendor, row.clone())?;
        txn.ops.push(WalOp::Insert {
            table: table.0,
            row,
        });
        self.stats.inserts += 1;
        Ok(id)
    }

    /// Stages a delete.
    pub fn txn_delete(
        &mut self,
        txn: &mut Transaction,
        table: TableId,
        row_id: RowId,
    ) -> RlsResult<Row> {
        let row = self.tables[table.0 as usize].delete(self.profile.vendor, row_id)?;
        txn.ops.push(WalOp::Delete {
            table: table.0,
            row_id: row_id.0,
        });
        self.stats.deletes += 1;
        Ok(row)
    }

    /// Stages an in-place update.
    pub fn txn_update(
        &mut self,
        txn: &mut Transaction,
        table: TableId,
        row_id: RowId,
        row: Row,
    ) -> RlsResult<Row> {
        let old = self.tables[table.0 as usize].update(row_id, row.clone())?;
        txn.ops.push(WalOp::Update {
            table: table.0,
            row_id: row_id.0,
            row,
        });
        self.stats.updates += 1;
        Ok(old)
    }

    /// Commits a transaction: one WAL record, flushed per the profile's
    /// [`FlushMode`]. Empty transactions are free.
    pub fn commit(&mut self, txn: Transaction) -> RlsResult<()> {
        if txn.ops.is_empty() {
            return Ok(());
        }
        let t0 = std::time::Instant::now();
        if let Some(wal) = &mut self.wal {
            wal.append_txn(&txn.ops)?;
        }
        self.stats.commits += 1;
        self.stats.commit_micros += t0.elapsed().as_micros() as u64;
        Ok(())
    }

    /// Commits a batched bulk transaction: every item's staged ops reach
    /// the WAL as **one** group-committed record and pay **one** flush,
    /// instead of a sync per item (Fig. 11's bulk advantage). Identical to
    /// [`Self::commit`] on the durability path — recovery replays the
    /// record's ops in stage order — but counted in
    /// [`EngineStats::group_commits`] so benchmarks and tests can assert
    /// the amortization actually happened.
    pub fn bulk_commit(&mut self, txn: Transaction) -> RlsResult<()> {
        let grouped = !txn.is_empty();
        self.commit(txn)?;
        if grouped {
            self.stats.group_commits += 1;
        }
        Ok(())
    }

    /// WAL records written so far (0 without a WAL). Each record is one
    /// atomic commit frame, so a bulk request contributes exactly one.
    pub fn wal_records(&self) -> u64 {
        self.wal.as_ref().map_or(0, Wal::records_written)
    }

    /// Runs VACUUM on a table: reclaims dead tuples and logs the pass.
    pub fn vacuum(&mut self, table: TableId) -> RlsResult<u64> {
        let t0 = std::time::Instant::now();
        let reclaimed = self.tables[table.0 as usize].vacuum();
        if let Some(wal) = &mut self.wal {
            wal.append_txn(&[WalOp::Vacuum { table: table.0 }])?;
        }
        self.stats.vacuums += 1;
        self.stats.tuples_reclaimed += reclaimed;
        self.stats.vacuum_micros += t0.elapsed().as_micros() as u64;
        Ok(reclaimed)
    }

    /// Total dead tuples across all tables.
    pub fn dead_tuples(&self) -> u64 {
        self.tables.iter().map(Table::dead_count).sum()
    }

    pub(crate) fn wal_mut(&mut self) -> Option<&mut Wal> {
        self.wal.as_mut()
    }

    pub(crate) fn tables(&self) -> &[Table] {
        &self.tables
    }

    pub(crate) fn tables_mut(&mut self) -> &mut Vec<Table> {
        &mut self.tables
    }

    pub(crate) fn vendor(&self) -> crate::profile::Vendor {
        self.profile.vendor
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{ColumnDef, IndexSpec};
    use crate::value::{Value, ValueType};

    fn schema() -> TableSchema {
        TableSchema::new(
            "t",
            vec![
                ColumnDef::new("id", ValueType::Int),
                ColumnDef::new("name", ValueType::Str),
            ],
            vec![IndexSpec::unique_hash(0)],
        )
    }

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("rls-engine-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let p = dir.join(format!("{name}-{}.wal", std::process::id()));
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn in_memory_crud() {
        let mut db = Database::in_memory(BackendProfile::default());
        let t = db.create_table(schema());
        let mut txn = Transaction::new();
        let id = db
            .txn_insert(&mut txn, t, vec![Value::Int(1), Value::str("a")])
            .unwrap();
        db.txn_update(&mut txn, t, id, vec![Value::Int(1), Value::str("b")])
            .unwrap();
        db.commit(txn).unwrap();
        assert_eq!(db.table(t).get(id).unwrap()[1].as_str(), "b");
        assert_eq!(db.stats().inserts, 1);
        assert_eq!(db.stats().updates, 1);
        assert_eq!(db.stats().commits, 1);
    }

    #[test]
    fn recovery_restores_state() {
        let path = tmp("recover");
        {
            let mut db = Database::open(BackendProfile::mysql_buffered(), &path).unwrap();
            let t = db.create_table(schema());
            db.recover().unwrap();
            for i in 0..10 {
                let mut txn = Transaction::new();
                db.txn_insert(&mut txn, t, vec![Value::Int(i), Value::str(format!("n{i}"))])
                    .unwrap();
                db.commit(txn).unwrap();
            }
            let mut txn = Transaction::new();
            db.txn_delete(&mut txn, t, RowId(3)).unwrap();
            db.commit(txn).unwrap();
            db.wal_mut().unwrap().sync().unwrap();
        }
        let mut db = Database::open(BackendProfile::mysql_buffered(), &path).unwrap();
        let t = db.create_table(schema());
        let applied = db.recover().unwrap();
        assert_eq!(applied, 11);
        assert_eq!(db.table(t).len(), 9);
        assert!(db.table(t).get(RowId(3)).is_none());
        assert_eq!(db.table(t).get(RowId(4)).unwrap()[1].as_str(), "n4");
    }

    #[test]
    fn recovery_preserves_row_ids_across_reuse() {
        let path = tmp("reuse");
        let trace = |db: &mut Database, t: TableId| -> Vec<(i64, u64)> {
            // delete then insert to exercise free-list reuse determinism
            let mut txn = Transaction::new();
            db.txn_delete(&mut txn, t, RowId(1)).unwrap();
            let nid = db
                .txn_insert(&mut txn, t, vec![Value::Int(100), Value::str("new")])
                .unwrap();
            db.commit(txn).unwrap();
            db.table(t)
                .scan()
                .map(|(rid, r)| (r[0].as_int(), rid.0))
                .chain(std::iter::once((100, nid.0)))
                .collect()
        };
        let before;
        {
            let mut db = Database::open(BackendProfile::mysql_buffered(), &path).unwrap();
            let t = db.create_table(schema());
            db.recover().unwrap();
            for i in 0..3 {
                let mut txn = Transaction::new();
                db.txn_insert(&mut txn, t, vec![Value::Int(i), Value::str(format!("n{i}"))])
                    .unwrap();
                db.commit(txn).unwrap();
            }
            before = trace(&mut db, t);
            db.wal_mut().unwrap().sync().unwrap();
        }
        let mut db = Database::open(BackendProfile::mysql_buffered(), &path).unwrap();
        let t = db.create_table(schema());
        db.recover().unwrap();
        let after: Vec<(i64, u64)> = db
            .table(t)
            .scan()
            .map(|(rid, r)| (r[0].as_int(), rid.0))
            .collect();
        let mut expect: Vec<(i64, u64)> = before;
        expect.sort_unstable();
        expect.dedup();
        let mut after_sorted = after;
        after_sorted.sort_unstable();
        assert_eq!(after_sorted, expect);
    }

    #[test]
    fn vacuum_logged_and_replayed() {
        let path = tmp("vacuum");
        {
            let mut db = Database::open(BackendProfile::postgres_buffered(), &path).unwrap();
            let t = db.create_table(schema());
            db.recover().unwrap();
            let mut txn = Transaction::new();
            let id = db
                .txn_insert(&mut txn, t, vec![Value::Int(1), Value::str("a")])
                .unwrap();
            db.txn_delete(&mut txn, t, id).unwrap();
            db.commit(txn).unwrap();
            assert_eq!(db.dead_tuples(), 1);
            assert_eq!(db.vacuum(t).unwrap(), 1);
            assert_eq!(db.dead_tuples(), 0);
            db.wal_mut().unwrap().sync().unwrap();
        }
        let mut db = Database::open(BackendProfile::postgres_buffered(), &path).unwrap();
        let t = db.create_table(schema());
        db.recover().unwrap();
        assert_eq!(db.dead_tuples(), 0);
        assert_eq!(db.table(t).len(), 0);
        // Freed slot reusable after replayed vacuum.
        let mut txn = Transaction::new();
        let id = db
            .txn_insert(&mut txn, t, vec![Value::Int(2), Value::str("b")])
            .unwrap();
        db.commit(txn).unwrap();
        assert_eq!(id, RowId(0));
    }

    #[test]
    fn empty_commit_is_free() {
        let mut db = Database::in_memory(BackendProfile::default());
        db.commit(Transaction::new()).unwrap();
        assert_eq!(db.stats().commits, 0);
    }
}
