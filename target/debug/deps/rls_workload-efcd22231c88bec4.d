/root/repo/target/debug/deps/rls_workload-efcd22231c88bec4.d: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/driver.rs crates/workload/src/namegen.rs crates/workload/src/stats.rs Cargo.toml

/root/repo/target/debug/deps/librls_workload-efcd22231c88bec4.rmeta: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/driver.rs crates/workload/src/namegen.rs crates/workload/src/stats.rs Cargo.toml

crates/workload/src/lib.rs:
crates/workload/src/dist.rs:
crates/workload/src/driver.rs:
crates/workload/src/namegen.rs:
crates/workload/src/stats.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
