/root/repo/target/release/deps/rls_proto-ac8e1629fb794fca.d: crates/proto/src/lib.rs crates/proto/src/codec.rs crates/proto/src/frame.rs crates/proto/src/message.rs

/root/repo/target/release/deps/librls_proto-ac8e1629fb794fca.rlib: crates/proto/src/lib.rs crates/proto/src/codec.rs crates/proto/src/frame.rs crates/proto/src/message.rs

/root/repo/target/release/deps/librls_proto-ac8e1629fb794fca.rmeta: crates/proto/src/lib.rs crates/proto/src/codec.rs crates/proto/src/frame.rs crates/proto/src/message.rs

crates/proto/src/lib.rs:
crates/proto/src/codec.rs:
crates/proto/src/frame.rs:
crates/proto/src/message.rs:
