/root/repo/target/debug/deps/rls_workload-f8d2b12df3c8ff75.d: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/driver.rs crates/workload/src/namegen.rs crates/workload/src/stats.rs

/root/repo/target/debug/deps/librls_workload-f8d2b12df3c8ff75.rlib: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/driver.rs crates/workload/src/namegen.rs crates/workload/src/stats.rs

/root/repo/target/debug/deps/librls_workload-f8d2b12df3c8ff75.rmeta: crates/workload/src/lib.rs crates/workload/src/dist.rs crates/workload/src/driver.rs crates/workload/src/namegen.rs crates/workload/src/stats.rs

crates/workload/src/lib.rs:
crates/workload/src/dist.rs:
crates/workload/src/driver.rs:
crates/workload/src/namegen.rs:
crates/workload/src/stats.rs:
