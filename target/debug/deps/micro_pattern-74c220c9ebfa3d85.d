/root/repo/target/debug/deps/micro_pattern-74c220c9ebfa3d85.d: crates/bench/benches/micro_pattern.rs Cargo.toml

/root/repo/target/debug/deps/libmicro_pattern-74c220c9ebfa3d85.rmeta: crates/bench/benches/micro_pattern.rs Cargo.toml

crates/bench/benches/micro_pattern.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
