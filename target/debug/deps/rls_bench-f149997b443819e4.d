/root/repo/target/debug/deps/rls_bench-f149997b443819e4.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/rls_bench-f149997b443819e4: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
