//! Earth System Grid-style deployment (§6 of the paper): "The Earth System
//! Grid deploys four RLS servers that function as both LRCs and RLIs in a
//! fully-connected configuration".
//!
//! Four combined servers, each holding its own site's climate datasets and
//! indexing everyone else's, so any site can resolve any dataset in two
//! hops. Also demonstrates soft-state expiry: when a site goes quiet, its
//! entries age out of the other sites' indexes.
//!
//! Run: `cargo run --example esg_fullmesh`

use std::time::Duration;

use rls::core::{LrcConfig, RliConfig, RlsClient, Server, ServerConfig};
use rls::types::Dn;

const SITES: [&str; 4] = ["ncar", "ornl", "lbnl", "isi"];
const DATASETS_PER_SITE: u64 = 50;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Start four combined LRC+RLI servers with a short soft-state timeout
    // so expiry is observable in this example.
    let mut servers = Vec::new();
    for site in SITES {
        let server = Server::start(ServerConfig {
            name: format!("esg-{site}"),
            lrc: Some(LrcConfig::default()),
            rli: Some(RliConfig {
                expire_timeout: Duration::from_millis(400),
                ..Default::default()
            }),
            ..ServerConfig::default()
        })?;
        println!("esg-{site} listening on {}", server.addr());
        servers.push(server);
    }

    // Fully-connected update mesh: every LRC updates every other RLI.
    for (i, server) in servers.iter().enumerate() {
        let lrc = server.lrc().expect("combined server");
        for (j, other) in servers.iter().enumerate() {
            if i != j {
                lrc.catalog().add_rli(&other.addr().to_string(), 0, &[])?;
            }
        }
    }

    // Each site publishes its own datasets.
    for (i, site) in SITES.iter().enumerate() {
        let mut client = RlsClient::connect(servers[i].addr(), &Dn::anonymous())?;
        for d in 0..DATASETS_PER_SITE {
            client.create_mapping(
                &format!("lfn://esg/{site}/cmip/dataset-{d:04}"),
                &format!("gsiftp://datanode.{site}.gov/cmip/dataset-{d:04}.nc"),
            )?;
        }
    }
    println!("published {} datasets per site", DATASETS_PER_SITE);

    // One update round across the mesh.
    for server in &servers {
        for outcome in server.run_update_cycle()? {
            outcome?;
        }
    }

    // A client at NCAR locates an ORNL dataset: RLI hop, then LRC hop.
    let mut ncar = RlsClient::connect(servers[0].addr(), &Dn::anonymous())?;
    let wanted = "lfn://esg/ornl/cmip/dataset-0031";
    let hits = ncar.rli_query_lfn(wanted)?;
    println!("NCAR's index points {wanted} at: {}", hits[0].lrc);
    assert_eq!(hits[0].lrc, "esg-ornl");
    // The RLI names the LRC; resolve its address and fetch the replicas.
    let ornl_addr = servers[1].addr();
    let mut ornl = RlsClient::connect(ornl_addr, &Dn::anonymous())?;
    let replicas = ornl.query_lfn(wanted)?;
    println!("ORNL resolves: {}", replicas[0]);

    // Cross-site stats: every index holds the other three sites' names.
    for (i, site) in SITES.iter().enumerate() {
        let mut c = RlsClient::connect(servers[i].addr(), &Dn::anonymous())?;
        let stats = c.stats()?;
        println!(
            "esg-{site}: {} local names, {} remote associations indexed",
            stats.lrc_lfn_count, stats.rli_association_count
        );
        assert_eq!(stats.lrc_lfn_count, DATASETS_PER_SITE);
        assert_eq!(stats.rli_association_count, 3 * DATASETS_PER_SITE);
    }

    // Soft-state expiry: no further updates arrive; after the timeout an
    // expire pass clears the mesh's indexes.
    std::thread::sleep(Duration::from_millis(600));
    let mut total_expired = 0;
    for server in &servers {
        total_expired += server.run_expire()?;
    }
    println!("expire pass discarded {total_expired} stale associations");
    assert_eq!(total_expired, (SITES.len() * 3) as u64 * DATASETS_PER_SITE);
    assert!(ncar.rli_query_lfn(wanted).is_err());
    println!("indexes empty until the sites' next soft-state updates — as designed");
    Ok(())
}
