/root/repo/target/debug/deps/rls_bloom-61148af1e1a72af8.d: crates/bloom/src/lib.rs crates/bloom/src/counting.rs crates/bloom/src/filter.rs crates/bloom/src/hash.rs crates/bloom/src/params.rs

/root/repo/target/debug/deps/rls_bloom-61148af1e1a72af8: crates/bloom/src/lib.rs crates/bloom/src/counting.rs crates/bloom/src/filter.rs crates/bloom/src/hash.rs crates/bloom/src/params.rs

crates/bloom/src/lib.rs:
crates/bloom/src/counting.rs:
crates/bloom/src/filter.rs:
crates/bloom/src/hash.rs:
crates/bloom/src/params.rs:
