/root/repo/target/debug/deps/rls_trace-80aeba5d0786d88b.d: crates/trace/src/lib.rs crates/trace/src/log.rs crates/trace/src/span.rs

/root/repo/target/debug/deps/rls_trace-80aeba5d0786d88b: crates/trace/src/lib.rs crates/trace/src/log.rs crates/trace/src/span.rs

crates/trace/src/lib.rs:
crates/trace/src/log.rs:
crates/trace/src/span.rs:
