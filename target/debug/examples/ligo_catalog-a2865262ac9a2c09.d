/root/repo/target/debug/examples/ligo_catalog-a2865262ac9a2c09.d: examples/ligo_catalog.rs

/root/repo/target/debug/examples/libligo_catalog-a2865262ac9a2c09.rmeta: examples/ligo_catalog.rs

examples/ligo_catalog.rs:
