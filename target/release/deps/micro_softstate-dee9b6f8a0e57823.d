/root/repo/target/release/deps/micro_softstate-dee9b6f8a0e57823.d: crates/bench/benches/micro_softstate.rs

/root/repo/target/release/deps/micro_softstate-dee9b6f8a0e57823: crates/bench/benches/micro_softstate.rs

crates/bench/benches/micro_softstate.rs:
