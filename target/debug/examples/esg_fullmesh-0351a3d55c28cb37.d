/root/repo/target/debug/examples/esg_fullmesh-0351a3d55c28cb37.d: examples/esg_fullmesh.rs Cargo.toml

/root/repo/target/debug/examples/libesg_fullmesh-0351a3d55c28cb37.rmeta: examples/esg_fullmesh.rs Cargo.toml

examples/esg_fullmesh.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
