//! Shaper timing integration tests: the emulated link must reproduce the
//! latency arithmetic the WAN experiments depend on.

use std::time::{Duration, Instant};

use rls_net::{connect, LinkProfile, Listener, SharedIngress};

/// Echo server helper.
fn echo() -> std::net::SocketAddr {
    let listener = Listener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        while let Ok(mut conn) = listener.accept() {
            std::thread::spawn(move || {
                while let Ok(Some(body)) = conn.recv() {
                    if conn.send(&body).is_err() {
                        break;
                    }
                }
            });
        }
    });
    addr
}

#[test]
fn serialization_adds_to_propagation() {
    // One-way delay must be serialization + RTT/2, not max(): a frame whose
    // transfer time is comparable to the RTT sees both.
    let addr = echo();
    let profile = LinkProfile {
        rtt: Duration::from_millis(40),
        bandwidth_bps: Some(8_000_000), // 1 MB/s
    };
    let mut conn = connect(addr, profile, None).unwrap();
    let body = vec![0u8; 50_000]; // 50 ms serialization each way
    let t0 = Instant::now();
    conn.request(&body).unwrap();
    let elapsed = t0.elapsed();
    // Expected ≈ 2×(50 ms serialization) + 40 ms RTT = 140 ms.
    assert!(
        elapsed >= Duration::from_millis(130),
        "components must add: {elapsed:?}"
    );
    assert!(elapsed < Duration::from_millis(600), "{elapsed:?}");
}

#[test]
fn back_to_back_frames_queue_on_the_connection() {
    let addr = echo();
    let profile = LinkProfile {
        rtt: Duration::ZERO,
        bandwidth_bps: Some(8_000_000),
    };
    let mut conn = connect(addr, profile, None).unwrap();
    // Three 25 ms sends in a row must take ≥ 75 ms of serialization before
    // the last one is on the wire (plus echo reads).
    let body = vec![0u8; 25_000];
    let t0 = Instant::now();
    for _ in 0..3 {
        conn.send(&body).unwrap();
    }
    for _ in 0..3 {
        conn.recv().unwrap().unwrap();
    }
    let elapsed = t0.elapsed();
    assert!(elapsed >= Duration::from_millis(140), "{elapsed:?}");
}

#[test]
fn wan_profile_matches_paper_arithmetic() {
    // A 10 Mbit Bloom filter over the paper's WAN profile should take
    // ≈ RTT + 10 Mbit / 7.4 Mbit/s ≈ 1.41 s one way. Validate the profile's
    // own arithmetic (no real transfer at this size in a unit test).
    let wan = LinkProfile::wan_la_chicago();
    let one_way = wan.serialization_delay(10_000_000 / 8).as_secs_f64()
        + wan.rtt.as_secs_f64() / 2.0;
    assert!((1.2..1.7).contains(&one_way), "one_way={one_way}");
}

#[test]
fn shared_ingress_is_fifo_and_conserves_bytes() {
    let pool = SharedIngress::new(10_000_000);
    let d1 = pool.acquire(12_500); // 10 ms at 10 Mbit/s
    let d2 = pool.acquire(12_500);
    assert!(d2 > d1);
    assert_eq!(pool.bytes_transferred(), 25_000);
    // An idle pool doesn't accumulate credit: a later acquire starts now.
    std::thread::sleep(Duration::from_millis(30));
    let t = Instant::now();
    let d3 = pool.acquire(12_500);
    assert!(d3 >= t, "no time travel");
    assert!(d3 <= t + Duration::from_millis(15));
}

#[test]
fn cloned_listeners_share_the_accept_queue() {
    let listener = Listener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let clone = listener.try_clone().unwrap();
    let h1 = std::thread::spawn(move || listener.accept().map(|_| ()).is_ok());
    let h2 = std::thread::spawn(move || clone.accept().map(|_| ()).is_ok());
    // Two connections: each accept loop gets one.
    let _c1 = std::net::TcpStream::connect(addr).unwrap();
    let _c2 = std::net::TcpStream::connect(addr).unwrap();
    assert!(h1.join().unwrap());
    assert!(h2.join().unwrap());
}

#[test]
fn read_timeout_surfaces_as_timeout_error() {
    // Server that accepts but never answers.
    let listener = Listener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    std::thread::spawn(move || {
        let _conn = listener.accept().unwrap();
        std::thread::sleep(Duration::from_secs(5));
    });
    let mut conn = connect(addr, LinkProfile::unshaped(), None).unwrap();
    conn.set_read_timeout(Some(Duration::from_millis(50))).unwrap();
    conn.send(b"hello?").unwrap();
    let err = conn.recv().unwrap_err();
    assert_eq!(err.code(), rls_types::ErrorCode::Timeout);
}

#[test]
fn unshaped_connection_has_negligible_overhead() {
    let addr = echo();
    let mut conn = connect(addr, LinkProfile::unshaped(), None).unwrap();
    // Warm up.
    conn.request(b"warm").unwrap();
    let t0 = Instant::now();
    for _ in 0..100 {
        conn.request(b"x").unwrap();
    }
    let per_rt = t0.elapsed() / 100;
    assert!(
        per_rt < Duration::from_millis(5),
        "loopback round trip too slow: {per_rt:?}"
    );
}
