/root/repo/target/release/deps/fig10_rli_query_bloom-9de1ff40701bc8b3.d: crates/bench/benches/fig10_rli_query_bloom.rs

/root/repo/target/release/deps/fig10_rli_query_bloom-9de1ff40701bc8b3: crates/bench/benches/fig10_rli_query_bloom.rs

crates/bench/benches/fig10_rli_query_bloom.rs:
