/root/repo/target/debug/deps/telemetry_flight-296926a8f2ce2654.d: crates/core/tests/telemetry_flight.rs

/root/repo/target/debug/deps/telemetry_flight-296926a8f2ce2654: crates/core/tests/telemetry_flight.rs

crates/core/tests/telemetry_flight.rs:
