/root/repo/target/debug/deps/serde-103814e3879c05bc.d: /tmp/vendor/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-103814e3879c05bc.rmeta: /tmp/vendor/serde/src/lib.rs

/tmp/vendor/serde/src/lib.rs:
