/root/repo/target/release/deps/rls_server-fdf4846b440f2245.d: src/bin/rls-server.rs

/root/repo/target/release/deps/rls_server-fdf4846b440f2245: src/bin/rls-server.rs

src/bin/rls-server.rs:
