/root/repo/target/debug/deps/rls_net-9ac2dc8869dfd451.d: crates/net/src/lib.rs crates/net/src/conn.rs crates/net/src/fault.rs crates/net/src/pipeline.rs crates/net/src/retry.rs crates/net/src/shaper.rs

/root/repo/target/debug/deps/librls_net-9ac2dc8869dfd451.rmeta: crates/net/src/lib.rs crates/net/src/conn.rs crates/net/src/fault.rs crates/net/src/pipeline.rs crates/net/src/retry.rs crates/net/src/shaper.rs

crates/net/src/lib.rs:
crates/net/src/conn.rs:
crates/net/src/fault.rs:
crates/net/src/pipeline.rs:
crates/net/src/retry.rs:
crates/net/src/shaper.rs:
