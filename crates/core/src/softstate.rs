//! Soft-state update senders (§3.2–3.5).
//!
//! An [`Updater`] owns an LRC's outbound update machinery: connections to
//! each RLI on the update list, the update-id counter, and the compiled
//! partition rules. It is driven either by the server's background update
//! thread or synchronously (tests, benches, `TestDeployment::force_updates`).
//!
//! Update kinds:
//!
//! * **Full/uncompressed** — every logical name, streamed in chunks; the
//!   RLI upserts each into its relational store. The paper's Fig. 12 shows
//!   why this scales poorly.
//! * **Delta (immediate mode)** — just the LFNs registered/removed since
//!   the last flush, plus periodic full refreshes to beat expiry (§3.3).
//! * **Bloom** — the compressed bitmap, generated incrementally when
//!   possible (Table 3).
//!
//! **Partitioning** (§3.5): when an RLI target carries regex patterns, only
//! matching logical names are sent to it (full and delta modes; a Bloom
//! filter summarizes the whole catalog and is sent wholesale, which is why
//! the paper notes partitioning "is rarely used in practice" once Bloom
//! compression is available).

use std::collections::HashMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

use rls_metrics::unix_micros_now;
use rls_net::{FaultHook, LinkProfile, RetryPolicy, SharedIngress};
use rls_proto::LagStamp;
use rls_storage::lrcdb::RliTarget;
use rls_trace::TraceJournal;
use rls_types::{Dn, Regex, RlsError, RlsResult};

use crate::client::{RetryMeter, RlsClient};
use crate::config::UpdateConfig;
use crate::lrc::{DeltaLog, LrcService};

/// Flag bit on an RLI target requesting Bloom-compressed updates.
pub const FLAG_BLOOM: i64 = 1;

/// What kind of update an outcome describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UpdateKind {
    /// Uncompressed full update.
    Full,
    /// Incremental delta.
    Delta,
    /// Bloom-filter update.
    Bloom,
}

/// The result of one update to one RLI.
#[derive(Clone, Debug)]
pub struct UpdateOutcome {
    /// Target RLI address.
    pub target: String,
    /// Update kind.
    pub kind: UpdateKind,
    /// Wall-clock duration of the send (the paper's "time for soft state
    /// update to complete … measured from the LRC's perspective").
    pub duration: Duration,
    /// Seconds spent (re)generating a Bloom filter, zero when the
    /// incrementally-maintained filter was reused (Table 3, column 3).
    pub generate_seconds: f64,
    /// Logical names carried (full/delta) or summarized (bloom).
    pub names: u64,
    /// Approximate payload bytes.
    pub bytes: u64,
}

/// Outbound update machinery for one LRC.
pub struct Updater {
    lrc_name: String,
    dn: Dn,
    lrc: Arc<LrcService>,
    link: LinkProfile,
    ingress: Option<SharedIngress>,
    chunk_size: usize,
    retry: RetryPolicy,
    hook: Option<Arc<dyn FaultHook>>,
    conns: HashMap<String, RlsClient>,
    /// Compiled partition regexes per RLI target, keyed by target name and
    /// invalidated when the target's pattern list changes. Compiling on
    /// every send made each full update and delta flush pay a regex-build
    /// pass per target per cycle.
    partitions: HashMap<String, (Vec<String>, Arc<Vec<Regex>>)>,
    /// Server span journal, when the updater runs inside a server: sends
    /// are recorded as `softstate.*_send` spans and their trace IDs are
    /// propagated to the RLI in the frame's trace envelope.
    journal: Option<Arc<TraceJournal>>,
}

impl std::fmt::Debug for Updater {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Updater")
            .field("lrc_name", &self.lrc_name)
            .finish_non_exhaustive()
    }
}

impl Updater {
    /// Builds an updater for `lrc`, advertising `lrc_name` to RLIs.
    pub fn new(lrc_name: String, dn: Dn, lrc: Arc<LrcService>, cfg: &UpdateConfig) -> Self {
        Self {
            lrc_name,
            dn,
            lrc,
            link: cfg.link,
            ingress: cfg.ingress.clone(),
            chunk_size: cfg.chunk_size.max(1),
            retry: cfg.retry,
            hook: cfg.fault_hook.clone(),
            conns: HashMap::new(),
            partitions: HashMap::new(),
            journal: None,
        }
    }

    /// The advertised LRC name.
    pub fn lrc_name(&self) -> &str {
        &self.lrc_name
    }

    /// Attaches the server's span journal: subsequent sends record
    /// `softstate.*_send` spans and propagate trace IDs on the wire.
    pub fn set_journal(&mut self, journal: Arc<TraceJournal>) {
        self.journal = Some(journal);
    }

    /// A fresh update-trace ID, or 0 (untraced) without a journal.
    fn mint_update_trace(&self) -> u64 {
        self.journal.as_ref().map_or(0, |j| j.mint_trace_id())
    }

    /// Records one send as a span under each of `trace_ids`.
    #[allow(clippy::too_many_arguments)]
    fn record_send_spans(
        &self,
        trace_ids: &[u64],
        op: &str,
        start: Instant,
        duration: Duration,
        ok: bool,
        detail: &str,
    ) {
        let Some(journal) = &self.journal else { return };
        for &id in trace_ids {
            journal.record_with(id, 0, op, start, duration, ok, detail);
        }
    }

    fn conn(&mut self, target: &str) -> RlsResult<&mut RlsClient> {
        if !self.conns.contains_key(target) {
            // Retries (dial and call alike) surface as softstate.retry_total
            // / softstate.backoff_ms in the LRC's stats report.
            let meter = RetryMeter::from_registry(self.lrc.metrics(), "softstate");
            let client = RlsClient::connect_with(
                target,
                &self.dn,
                self.link,
                self.ingress.clone(),
                self.retry,
                self.hook.clone(),
                Some(meter),
            )?;
            self.conns.insert(target.to_owned(), client);
        }
        Ok(self.conns.get_mut(target).expect("just inserted"))
    }

    /// Drops a cached connection (after a send failure).
    fn drop_conn(&mut self, target: &str) {
        self.conns.remove(target);
    }

    fn compile_partitions(target: &RliTarget) -> RlsResult<Vec<Regex>> {
        target
            .patterns
            .iter()
            .map(|p| {
                Regex::new(p).map_err(|e| e.context(format!("partition pattern for {}", target.name)))
            })
            .collect()
    }

    /// Compiled partition regexes for `target`, from the per-target cache.
    /// Recompiles only when the target's pattern list has changed (patterns
    /// are catalog state and can be edited via `add_rli`). Invalid patterns
    /// still fail here — config-file patterns are additionally validated at
    /// load time, so for file-driven deployments this path never fails.
    fn partitions(&mut self, target: &RliTarget) -> RlsResult<Arc<Vec<Regex>>> {
        if let Some((patterns, compiled)) = self.partitions.get(&target.name) {
            if *patterns == target.patterns {
                return Ok(Arc::clone(compiled));
            }
        }
        let compiled = Arc::new(Self::compile_partitions(target)?);
        self.partitions.insert(
            target.name.clone(),
            (target.patterns.clone(), Arc::clone(&compiled)),
        );
        Ok(compiled)
    }

    fn matches_partitions(patterns: &[Regex], lfn: &str) -> bool {
        patterns.is_empty() || patterns.iter().any(|re| re.is_match(lfn))
    }

    /// Records one delivered update into the LRC's metrics registry
    /// (`softstate.*` series — the measurement surface behind Table 3 and
    /// Figures 11–13).
    fn record_outcome(&self, out: &UpdateOutcome) {
        let m = self.lrc.metrics();
        let hist = match out.kind {
            UpdateKind::Full => "softstate.full_update",
            UpdateKind::Delta => "softstate.delta_update",
            UpdateKind::Bloom => "softstate.bloom_update",
        };
        m.histogram(hist).record(out.duration);
        m.counter("softstate.updates_sent").inc();
        m.counter("softstate.names_sent").add(out.names);
        m.counter("softstate.bytes_sent").add(out.bytes);
        if out.generate_seconds > 0.0 {
            m.histogram("softstate.bloom_generate")
                .record_micros((out.generate_seconds * 1_000_000.0) as u64);
        }
    }

    /// Sends an uncompressed full update to one RLI.
    pub fn send_full(&mut self, target: &RliTarget) -> RlsResult<UpdateOutcome> {
        let patterns = self.partitions(target)?;
        // Freshness stamp taken at snapshot start: the shipped state is
        // current as of this commit sequence and wall-clock instant. It
        // rides only on the final chunk — the RLI's lag plane should see
        // one stamp per completed update, not one per chunk.
        let stamp = LagStamp {
            commit_seq: self.lrc.commit_seq(),
            commit_unix_micros: unix_micros_now(),
        };
        // Snapshot the namespace shard by shard (each shard read-locked
        // only for its own scan). Full updates are idempotent upserts, so a
        // write landing between shard scans is healed by the next cycle —
        // the same soft-state contract that already tolerates a write
        // landing right after the snapshot.
        let lfns: Vec<String> = {
            let catalog = self.lrc.catalog();
            let mut v = Vec::with_capacity(catalog.lfn_count() as usize);
            catalog.for_each_lfn(|lfn| {
                if Self::matches_partitions(&patterns, lfn) {
                    v.push(lfn.to_owned());
                }
            });
            v
        };
        // Update IDs must be unique across *all* updater instances for this
        // process: callers (server update thread, synchronous test cycles)
        // construct short-lived Updaters freely, and the RLI's chunk-
        // reassembly cursor treats a repeated (update_id, seq) as an
        // idempotent retransmit. A per-instance counter restarting at 1
        // would make every fresh updater's first full update look like a
        // retransmit of the previous one and be silently dropped.
        static NEXT_UPDATE_ID: std::sync::atomic::AtomicU64 =
            std::sync::atomic::AtomicU64::new(1);
        let update_id = NEXT_UPDATE_ID.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let lrc_name = self.lrc_name.clone();
        let chunk_size = self.chunk_size;
        let names = lfns.len() as u64;
        let bytes: u64 = lfns.iter().map(|s| s.len() as u64 + 4).sum();
        // Server-originated work gets a fresh update-trace ID; the RLI's
        // apply spans land under the same ID via the trace envelope.
        let trace_id = self.mint_update_trace();
        let id_buf = [trace_id];
        let trace_ids: &[u64] = if trace_id == 0 { &[] } else { &id_buf };
        let t0 = Instant::now();
        let result = (|| -> RlsResult<()> {
            let conn = self.conn(&target.name)?;
            if lfns.is_empty() {
                conn.send_full_chunk_framed(
                    &lrc_name,
                    update_id,
                    0,
                    true,
                    Vec::new(),
                    trace_ids,
                    Some(stamp),
                )?;
                return Ok(());
            }
            let chunks: Vec<&[String]> = lfns.chunks(chunk_size).collect();
            let last_idx = chunks.len() - 1;
            for (seq, chunk) in chunks.into_iter().enumerate() {
                // The wire carries a u32 sequence; a catalog big enough to
                // overflow it must fail loudly, not wrap and corrupt the
                // RLI's reassembly ordering.
                let wire_seq = u32::try_from(seq).map_err(|_| {
                    RlsError::bad_request(format!(
                        "full update to {} exceeds {} chunks (u32 sequence space)",
                        target.name,
                        u32::MAX
                    ))
                })?;
                let last = seq == last_idx;
                conn.send_full_chunk_framed(
                    &lrc_name,
                    update_id,
                    wire_seq,
                    last,
                    chunk.to_vec(),
                    trace_ids,
                    if last { Some(stamp) } else { None },
                )?;
            }
            Ok(())
        })();
        self.record_send_spans(
            trace_ids,
            "softstate.full_send",
            t0,
            t0.elapsed(),
            result.is_ok(),
            &format!("target={} names={names}", target.name),
        );
        if let Err(e) = result {
            self.drop_conn(&target.name);
            return Err(e);
        }
        let out = UpdateOutcome {
            target: target.name.clone(),
            kind: UpdateKind::Full,
            duration: t0.elapsed(),
            generate_seconds: 0.0,
            names,
            bytes,
        };
        self.record_outcome(&out);
        Ok(out)
    }

    /// Sends a Bloom update to one RLI.
    pub fn send_bloom(&mut self, target: &RliTarget) -> RlsResult<UpdateOutcome> {
        let stamp = LagStamp {
            commit_seq: self.lrc.commit_seq(),
            commit_unix_micros: unix_micros_now(),
        };
        let (filter, generate_seconds) = self.lrc.bloom_snapshot();
        let names = filter.entries();
        let bytes = filter.byte_len() as u64;
        // Gauge the outgoing filter: fill level and the paper's §3.4
        // false-positive estimate (fill_ratio^k), in parts-per-million.
        let m = self.lrc.metrics();
        m.counter("softstate.bloom_bits_set").set(filter.set_bits());
        m.counter("softstate.bloom_bits_total").set(filter.bit_len());
        m.counter("softstate.bloom_fpp_ppm")
            .set((filter.estimated_fpp() * 1_000_000.0) as u64);
        let lrc_name = self.lrc_name.clone();
        let trace_id = self.mint_update_trace();
        let id_buf = [trace_id];
        let trace_ids: &[u64] = if trace_id == 0 { &[] } else { &id_buf };
        let t0 = Instant::now();
        let result = self
            .conn(&target.name)
            .and_then(|conn| conn.send_bloom_framed(&lrc_name, &filter, trace_ids, Some(stamp)));
        self.record_send_spans(
            trace_ids,
            "softstate.bloom_send",
            t0,
            t0.elapsed(),
            result.is_ok(),
            &format!("target={} entries={names}", target.name),
        );
        if let Err(e) = result {
            self.drop_conn(&target.name);
            return Err(e);
        }
        let out = UpdateOutcome {
            target: target.name.clone(),
            kind: UpdateKind::Bloom,
            duration: t0.elapsed(),
            generate_seconds,
            names,
            bytes,
        };
        self.record_outcome(&out);
        Ok(out)
    }

    /// Flushes the delta journal to every non-Bloom RLI on the update list.
    ///
    /// Failure handling is per target ("requeue once"): deltas that fail
    /// toward one RLI go into *that target's* backlog and ride along with
    /// the next flush toward it — RLIs that were reached never re-receive
    /// them. A backlogged delta that fails a second time is dropped
    /// (counted in `softstate.deltas_dropped`); the target converges at
    /// the next periodic full refresh, which is exactly the healing role
    /// immediate mode's "infrequent full updates" play in §3.3. A dead RLI
    /// therefore delays nothing and leaks nothing: the cycle skips past it
    /// and bounded state waits for its return.
    pub fn flush_deltas(&mut self, targets: &[RliTarget]) -> RlsResult<Vec<UpdateOutcome>> {
        // Resolve every partition set BEFORE consuming the journal: a bad
        // pattern must fail the flush without losing buffered deltas.
        let non_bloom: Vec<(&RliTarget, Arc<Vec<Regex>>)> = targets
            .iter()
            .filter(|t| t.flags & FLAG_BLOOM == 0)
            .map(|t| Ok((t, self.partitions(t)?)))
            .collect::<RlsResult<_>>()?;
        // A target dropped from the update list must not pin its backlog.
        self.lrc
            .prune_backlog(|name| non_bloom.iter().any(|(t, _)| t.name == name));
        let log = self.lrc.take_deltas();
        if log.is_empty() && self.lrc.pending_backlog() == 0 {
            return Ok(Vec::new());
        }
        // The journal is drained as of now: the flushed deltas carry this
        // commit sequence and instant as their freshness stamp.
        let stamp = LagStamp {
            commit_seq: log.seq,
            commit_unix_micros: unix_micros_now(),
        };
        let unreachable = self.lrc.metrics().counter("softstate.rli_unreachable");
        let dropped_ctr = self.lrc.metrics().counter("softstate.deltas_dropped");
        let backlog_gauge = self.lrc.metrics().counter("softstate.backlog_deltas");
        // Carry the originating client-op trace IDs across the wire; a
        // journal-less flush of untraced changes goes out untraced.
        let mut trace_ids = log.trace_ids.clone();
        if trace_ids.is_empty() {
            let id = self.mint_update_trace();
            if id != 0 {
                trace_ids.push(id);
            }
        }
        let mut outcomes = Vec::new();
        let mut attempted = 0usize;
        let mut delivered_any = false;
        for (target, patterns) in &non_bloom {
            let fresh_added: Vec<String> = log
                .added
                .iter()
                .filter(|l| Self::matches_partitions(patterns, l))
                .cloned()
                .collect();
            let fresh_removed: Vec<String> = log
                .removed
                .iter()
                .filter(|l| Self::matches_partitions(patterns, l))
                .cloned()
                .collect();
            // Second-chance payload: this target's backlog goes first so
            // the RLI applies changes in their original order.
            let backlog = self.lrc.take_backlog(&target.name).unwrap_or_default();
            let backlog_len = backlog.len();
            if backlog_len == 0 && fresh_added.is_empty() && fresh_removed.is_empty() {
                continue;
            }
            attempted += 1;
            let mut added = backlog.added;
            added.extend(fresh_added.iter().cloned());
            let mut removed = backlog.removed;
            removed.extend(fresh_removed.iter().cloned());
            let mut ids = backlog.trace_ids;
            ids.extend(trace_ids.iter().copied());
            let names = (added.len() + removed.len()) as u64;
            let bytes: u64 = added
                .iter()
                .chain(&removed)
                .map(|s| s.len() as u64 + 4)
                .sum();
            let lrc_name = self.lrc_name.clone();
            let t0 = Instant::now();
            let result = self.conn(&target.name).and_then(|conn| {
                conn.send_delta_framed(&lrc_name, added, removed, &ids, Some(stamp))
            });
            self.record_send_spans(
                &ids,
                "softstate.delta_send",
                t0,
                t0.elapsed(),
                result.is_ok(),
                &format!("target={} names={names}", target.name),
            );
            match result {
                Ok(()) => {
                    delivered_any = true;
                    let out = UpdateOutcome {
                        target: target.name.clone(),
                        kind: UpdateKind::Delta,
                        duration: t0.elapsed(),
                        generate_seconds: 0.0,
                        names,
                        bytes,
                    };
                    self.record_outcome(&out);
                    outcomes.push(out);
                }
                Err(_) => {
                    self.drop_conn(&target.name);
                    unreachable.inc();
                    // Requeue once: the fresh deltas get a second chance
                    // next flush; the backlogged ones already had theirs
                    // and are dropped (the full refresh will heal them).
                    dropped_ctr.add(backlog_len as u64);
                    self.lrc.put_backlog(
                        &target.name,
                        DeltaLog {
                            added: fresh_added,
                            removed: fresh_removed,
                            trace_ids: trace_ids.clone(),
                            seq: log.seq,
                        },
                    );
                }
            }
        }
        backlog_gauge.set(self.lrc.pending_backlog() as u64);
        if attempted > 0 && !delivered_any {
            // Every send failed; the deltas wait in per-target backlogs.
            return Err(RlsError::new(
                rls_types::ErrorCode::Io,
                "no RLI reachable for delta flush (re-queued per target)",
            ));
        }
        // attempted == 0 means no non-Bloom target wanted any of these
        // names (all-Bloom update lists are covered by filter pushes, and
        // partition-unmatched names are indexed nowhere by design, §3.5):
        // the journal is correctly dropped, not re-queued.
        Ok(outcomes)
    }

    /// Re-queues an unflushed journal (used by the background thread on
    /// shutdown).
    pub fn requeue(&self, log: DeltaLog) {
        self.lrc.requeue_deltas(log);
    }

    /// Runs one complete update cycle: Bloom targets get filters, the rest
    /// get full updates. Returns one result per target — a dead RLI yields
    /// its `Err` slot (and bumps `softstate.rli_unreachable`) without
    /// stalling the rest of the cycle.
    pub fn run_cycle(&mut self) -> Vec<RlsResult<UpdateOutcome>> {
        let targets = self.lrc.catalog().list_rlis();
        let unreachable = self.lrc.metrics().counter("softstate.rli_unreachable");
        targets
            .iter()
            .map(|t| {
                let result = if t.flags & FLAG_BLOOM != 0 {
                    self.send_bloom(t)
                } else {
                    self.send_full(t)
                };
                if result.is_err() {
                    unreachable.inc();
                }
                result
            })
            .collect()
    }

    /// Current RLI update-list snapshot.
    pub fn targets(&self) -> Vec<RliTarget> {
        self.lrc.catalog().list_rlis()
    }

    /// Handle to the LRC service this updater drains.
    pub fn lrc_handle(&self) -> Arc<LrcService> {
        Arc::clone(&self.lrc)
    }
}
